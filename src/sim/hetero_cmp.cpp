#include "sim/hetero_cmp.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>

#include "check/context.hpp"
#include "check/digest.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "dram/frfcfs.hpp"
#include "obs/telemetry.hpp"
#include "sched/bypass.hpp"
#include "sched/cpu_prio.hpp"
#include "sched/dynprio.hpp"
#include "sched/helm.hpp"
#include "sched/sms.hpp"

namespace gpuqos {
namespace {

/// Fans frame-progress callbacks out to the FRPU (which must keep observing
/// exactly as before) and mirrors frame boundaries — plus the FRPU's
/// per-frame prediction samples and relearn events — into the telemetry
/// layer. Lives in sim so obs never depends on the qos library.
class TelemetryFrameTee : public FrameObserver {
 public:
  TelemetryFrameTee(FrameRateEstimator& frpu, Telemetry& telemetry)
      : frpu_(frpu), telemetry_(telemetry) {}

  void on_frame_start(const SceneFrame& frame, Cycle gpu_now) override {
    frpu_.on_frame_start(frame, gpu_now);
    telemetry_.on_frame_start(gpu_now);
    samples_seen_ = frpu_.samples().size();
    relearns_seen_ = frpu_.relearn_events();
  }
  void on_rt_update(unsigned tile, Cycle gpu_now) override {
    frpu_.on_rt_update(tile, gpu_now);
  }
  void on_llc_access(Cycle gpu_now) override {
    frpu_.on_llc_access(gpu_now);
  }
  void on_frame_complete(Cycle gpu_now) override {
    frpu_.on_frame_complete(gpu_now);
    telemetry_.on_frame_complete(gpu_now, frame_index_);
    const auto& samples = frpu_.samples();
    if (samples.size() > samples_seen_) {
      const auto& s = samples.back();
      telemetry_.record_prediction(gpu_now, frame_index_, s.predicted_cycles,
                                   s.actual_cycles);
    }
    if (frpu_.relearn_events() > relearns_seen_) {
      telemetry_.record_relearn(gpu_now, frpu_.relearn_events());
    }
    ++frame_index_;
  }

 private:
  FrameRateEstimator& frpu_;
  Telemetry& telemetry_;
  std::uint64_t frame_index_ = 0;
  std::size_t samples_seen_ = 0;
  std::uint64_t relearns_seen_ = 0;
};

/// Forwards frame-progress callbacks to whatever observer was wired before
/// (the FRPU directly, or the TelemetryFrameTee) and additionally runs a full
/// audit pass at every frame boundary, so MSHR leaks and ledger imbalances
/// are caught at the paper's natural unit of work even when the periodic
/// audit ticker is off.
class CheckFrameTee : public FrameObserver {
 public:
  CheckFrameTee(FrameObserver& inner, CheckContext& check, Engine& engine)
      : inner_(inner), check_(check), engine_(engine) {}

  void on_frame_start(const SceneFrame& frame, Cycle gpu_now) override {
    inner_.on_frame_start(frame, gpu_now);
  }
  void on_rt_update(unsigned tile, Cycle gpu_now) override {
    inner_.on_rt_update(tile, gpu_now);
  }
  void on_llc_access(Cycle gpu_now) override { inner_.on_llc_access(gpu_now); }
  void on_frame_complete(Cycle gpu_now) override {
    inner_.on_frame_complete(gpu_now);
    // During a parallel tick this fires on the GPU domain's worker while the
    // other domains are still mid-cycle; the audit reads every module, so it
    // must run at the barrier — which is also its exact serial position,
    // because the frame-completing pipeline tick is the last parallel ticker
    // and every deferred op it follows replays first.
    Engine::defer_host([this] { check_.audit(engine_.now()); });
  }

 private:
  FrameObserver& inner_;
  CheckContext& check_;
  Engine& engine_;
};

}  // namespace

std::uint64_t config_digest(const SimConfig& cfg) {
  Fnv1a64 h;
  auto mix_cache = [&h](const CacheConfig& c) {
    h.mix(c.size_bytes);
    h.mix(c.ways);
    h.mix(c.block_bytes);
    h.mix(c.latency);
    h.mix_bool(c.srrip);
  };
  h.mix(cfg.cpu_cores);
  mix_cache(cfg.core.l1d);
  mix_cache(cfg.core.l1i);
  mix_cache(cfg.core.l2);
  h.mix(cfg.core.commit_width);
  h.mix(cfg.core.rob_size);
  h.mix(cfg.core.l1_mshrs);
  h.mix(cfg.core.l2_mshrs);
  h.mix(cfg.llc.size_bytes);
  h.mix(cfg.llc.ways);
  h.mix(cfg.llc.block_bytes);
  h.mix(cfg.llc.latency);
  h.mix(cfg.llc.ports);
  h.mix(cfg.llc.mshrs);
  h.mix(cfg.dram.channels);
  h.mix(cfg.dram.banks_per_channel);
  h.mix(cfg.dram.row_bytes);
  const DramTiming& t = cfg.dram.timing;
  for (unsigned v : {t.tCL, t.tRCD, t.tRP, t.tRAS, t.tWR, t.tBurst, t.tCCD,
                     t.tRTP, t.tWTR}) {
    h.mix(v);
  }
  h.mix(cfg.dram.read_queue_depth);
  h.mix(cfg.dram.write_queue_depth);
  h.mix(cfg.dram.write_drain_high);
  h.mix(cfg.dram.write_drain_low);
  h.mix(cfg.ring.hop_latency);
  const GpuConfig& g = cfg.gpu;
  h.mix(g.shader_cores);
  h.mix(g.max_fragments_in_flight);
  h.mix(g.rop_units);
  h.mix(g.raster_rate);
  h.mix(g.vertex_rate);
  h.mix(g.shader_cycles_per_fragment);
  for (const CacheConfig* c :
       {&g.tex_l0, &g.tex_l1, &g.tex_l2, &g.depth_l1, &g.depth_l2, &g.color_l1,
        &g.color_l2, &g.vertex_cache, &g.hiz_cache, &g.shader_icache}) {
    mix_cache(*c);
  }
  h.mix(g.mem_queue_depth);
  h.mix(g.llc_issue_width);
  h.mix(g.llc_issue_interval);
  const QosConfig& q = cfg.qos;
  h.mix_double(q.target_fps);
  h.mix(q.rtp_table_entries);
  h.mix_double(q.relearn_threshold);
  h.mix(q.control_interval_gpu_cycles);
  h.mix(q.ng_init);
  h.mix(q.wg_step);
  h.mix_bool(q.relearn_on_cycles);
  h.mix_bool(q.hold_throttle_in_learning);
  h.mix(cfg.seed);
  h.mix_double(cfg.fps_scale);
  return h.value();
}

std::string to_string(Policy p) {
  switch (p) {
    case Policy::Baseline: return "Baseline";
    case Policy::Throttle: return "Throttled";
    case Policy::ThrottleCpuPrio: return "ThrotCPUprio";
    case Policy::Sms09: return "SMS-0.9";
    case Policy::Sms0: return "SMS-0";
    case Policy::DynPrio: return "DynPrio";
    case Policy::Helm: return "HeLM";
    case Policy::ForceBypass: return "ForceBypass";
  }
  return "?";
}

const std::vector<Policy>& all_policies() {
  // NOLINT-gpuqos(concurrency-discipline): immutable input-independent table;
  // C++11 magic-static init is thread-safe and nothing mutates it after.
  static const std::vector<Policy> kAll = {
      Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio,
      Policy::Sms09,    Policy::Sms0,     Policy::DynPrio,
      Policy::Helm,     Policy::ForceBypass};
  return kAll;
}

bool policy_from_string(const std::string& name, Policy& out) {
  for (Policy p : all_policies()) {
    if (to_string(p) == name) {
      out = p;
      return true;
    }
  }
  return false;
}

HeteroCmp::HeteroCmp(const SimConfig& cfg, Policy policy,
                     std::vector<SpecProfile> cpu_profiles,
                     std::vector<SceneFrame> gpu_frames, double fps_scale)
    : cfg_(cfg),
      policy_(policy),
      fps_scale_(fps_scale),
      has_gpu_work_(!gpu_frames.empty()) {
  stats_ = std::make_unique<StatRegistry>();
  engine_ = std::make_unique<Engine>();
  Rng rng(cfg.seed);

  // Ring stop layout: cpu0..cpuN-1, gpu, llc, mc0, mc1.
  const unsigned n = cfg.cpu_cores;
  gpu_stop_ = n;
  llc_stop_ = n + 1;
  mc_stop_base_ = n + 2;
  ring_ = std::make_unique<RingNetwork>(*engine_, n + 4, cfg.ring, *stats_);

  llc_ = std::make_unique<SharedLlc>(*engine_, cfg.llc, *stats_);

  // DRAM scheduler per policy.
  DramController::SchedulerFactory factory;
  switch (policy) {
    case Policy::ThrottleCpuPrio:
      factory = [this](unsigned) {
        return std::make_unique<CpuPriorityScheduler>(&signals_);
      };
      break;
    case Policy::Sms09:
    case Policy::Sms0:
      factory = [policy, &rng](unsigned ch) {
        SmsScheduler::Params params;
        params.shortest_first_prob = policy == Policy::Sms09 ? 0.9 : 0.0;
        return std::make_unique<SmsScheduler>(params, rng.fork(1000 + ch));
      };
      break;
    case Policy::DynPrio:
      factory = [this](unsigned) {
        return std::make_unique<DynPrioScheduler>(&signals_);
      };
      break;
    default:
      factory = [](unsigned) { return std::make_unique<FrFcfsScheduler>(); };
      break;
  }
  dram_ = std::make_unique<DramController>(*engine_, cfg.dram, *stats_, factory);

  // LLC bypass policy per policy.
  if (policy == Policy::Helm) {
    bypass_ = std::make_unique<HelmBypassPolicy>(&signals_);
    llc_->set_bypass_policy(bypass_.get());
  } else if (policy == Policy::ForceBypass) {
    bypass_ = std::make_unique<ForceBypassPolicy>();
    llc_->set_bypass_policy(bypass_.get());
  }

  // CPU cores (one per provided profile).
  for (unsigned i = 0; i < cpu_profiles.size() && i < n; ++i) {
    const Addr base = 0x100000000ull * (i + 1);
    auto stream = std::make_unique<CpuStream>(cpu_profiles[i], base,
                                              rng.fork(100 + i));
    cores_.push_back(std::make_unique<CpuCore>(*engine_, cfg.core, i,
                                               std::move(stream), *stats_));
    wire_core(i);
    CpuCore* core = cores_.back().get();
    engine_->add_ticker(Engine::TickDomain::Cpu, 1, 0,
                        [core](Cycle now) { core->tick(now); });
  }

  wire_llc();

  // GPU.
  gmi_ = std::make_unique<GpuMemInterface>(cfg.gpu, *stats_);
  pipeline_ = std::make_unique<GpuPipeline>(*engine_, cfg.gpu, *stats_,
                                            rng.fork(777));
  pipeline_->set_mem_interface(gmi_.get());
  wire_gpu();

  frpu_ = std::make_unique<FrameRateEstimator>(cfg.qos);
  pipeline_->set_observer(frpu_.get());
  gmi_->set_observer(frpu_.get());

  atu_ = std::make_unique<AccessThrottler>(cfg.qos);
  const bool throttles =
      policy == Policy::Throttle || policy == Policy::ThrottleCpuPrio;
  if (throttles) gmi_->set_gate(atu_.get());

  QosGovernor::Options opts;
  opts.enable_throttle = throttles;
  opts.enable_cpu_prio = policy == Policy::ThrottleCpuPrio;
  governor_ = std::make_unique<QosGovernor>(*engine_, cfg.qos, opts, *frpu_,
                                            *atu_, *pipeline_, signals_,
                                            fps_scale_, *stats_);

  for (auto& frame : gpu_frames) pipeline_->submit_frame(std::move(frame));

  // GPU-side tickers at the GPU clock: memory interface first so this
  // cycle's allowance drains before the pipeline refills the queue.
  // Gpu-domain: during a parallel tick they run on a worker thread; all
  // their cross-domain traffic (ring sends, frame-boundary audits) defers
  // to the cycle barrier. Note the governor (registered above, inside
  // QosGovernor) stays Main-domain: its phase-1 schedule never coincides
  // with these phase-0 tickers, which the engine's ordering check enforces.
  GpuMemInterface* gmi = gmi_.get();
  GpuPipeline* pipe = pipeline_.get();
  engine_->add_ticker(Engine::TickDomain::Gpu, kGpuClockDivider, 0,
                      [gmi](Cycle now) { gmi->tick(base_to_gpu_cycles(now)); });
  engine_->add_ticker(Engine::TickDomain::Gpu, kGpuClockDivider, 0,
                      [pipe](Cycle now) {
                        pipe->tick_gpu(base_to_gpu_cycles(now));
                      });

  // Stamp GPUQOS_LOG messages with the simulation cycle while this CMP is the
  // active simulation (cleared in the destructor).
  Engine* eng = engine_.get();
  set_log_cycle_source([eng] { return eng->now(); });

  // Tick workers are fresh threads: give them the same log cycle source and
  // a private profiler lane (lane 0 is the main thread's).
  engine_->set_worker_init([eng](unsigned w) {
    set_log_cycle_source([eng] { return eng->now(); });
    Profiler::set_thread_lane(static_cast<int>(w) + 1);
  });
}

HeteroCmp::~HeteroCmp() {
  set_log_cycle_source(nullptr);
  if (telemetry_ != nullptr) set_log_sink(nullptr);
}

void HeteroCmp::attach_telemetry(Telemetry& telemetry) {
  telemetry_ = &telemetry;
  ring_->set_telemetry(&telemetry);
  llc_->set_telemetry(&telemetry);
  dram_->set_telemetry(&telemetry);
  governor_->set_telemetry(&telemetry);

  // Host-time attribution: hand every module the profiler and open the run
  // window. The profiler never touches simulated state, so wiring it here
  // cannot perturb digests.
  if (Profiler* prof = telemetry.profiler()) {
    for (auto& core : cores_) core->set_profiler(prof);
    pipeline_->set_profiler(prof);
    gmi_->set_profiler(prof);
    llc_->set_profiler(prof);
    ring_->set_profiler(prof);
    dram_->set_profiler(prof);
    governor_->set_profiler(prof);
    prof->start();
    if (telemetry.options().prof_flush_interval > 0) {
      const Cycle period = telemetry.options().prof_flush_interval;
      engine_->add_ticker(period, /*phase=*/period - 1,
                          [prof](Cycle now) { prof->flush(now); });
    }
  }

  // Frame spans + FRPU prediction journal: interpose a tee between the
  // pipeline/GMI and the FRPU.
  auto tee = std::make_unique<TelemetryFrameTee>(*frpu_, telemetry);
  pipeline_->set_observer(tee.get());
  gmi_->set_observer(tee.get());
  frame_tee_ = std::move(tee);

  // Interval sampler: StatRegistry deltas plus live controller gauges.
  if (telemetry.options().sample_interval > 0) {
    IntervalSampler& sampler = telemetry.sampler();
    sampler.bind(stats_.get());
    GpuPipeline* pipe = pipeline_.get();
    AccessThrottler* atu = atu_.get();
    const QosSignals* sig = &signals_;
    sampler.add_gauge("gpu.frames_completed",
                      [pipe] { return double(pipe->frames_completed()); });
    sampler.add_gauge("atu.wg", [atu] { return double(atu->wg()); });
    sampler.add_gauge("atu.throttling",
                      [atu] { return atu->throttling() ? 1.0 : 0.0; });
    sampler.add_gauge("qos.predicted_fps",
                      [sig] { return sig->predicted_fps; });
    sampler.add_gauge("qos.cpu_prio_boost",
                      [sig] { return sig->cpu_prio_boost ? 1.0 : 0.0; });
    sampler.add_gauge("qos.gpu_latency_tolerance",
                      [sig] { return sig->gpu_latency_tolerance; });
    sampler.rebase(engine_->now());
    Telemetry* tel = &telemetry;
    const Cycle period = telemetry.options().sample_interval;
    // Phase period-1 skips the empty cycle-0 sample.
    engine_->add_ticker(period, /*phase=*/period - 1,
                        [tel](Cycle now) { tel->sampler().sample(now); });
  }

  // Route GPUQOS_LOG lines into the trace with their cycle stamp (and still
  // to stderr, so interactive behaviour is unchanged).
  if (telemetry.options().capture_log && telemetry.options().capture_trace) {
    Telemetry* tel = &telemetry;
    set_log_sink([tel](LogLevel level, Cycle cycle, const std::string& msg) {
      tel->on_log(static_cast<int>(level), cycle, msg);
      std::fprintf(stderr, "[gpuqos @%llu] %s\n",
                   static_cast<unsigned long long>(cycle), msg.c_str());
    });
  }
}

void HeteroCmp::attach_checks(CheckContext& check) {
  check_ = &check;

  // Conservation ledger hooks: every read a core or the GPU issues must
  // complete exactly once; every DRAM command enqueued must be serviced.
  ring_->set_check(&check);
  dram_->set_check(&check);
  gmi_->set_check(&check);
  std::uint64_t cpu_read_bound = 0;
  for (auto& core : cores_) {
    core->set_check(&check);
    cpu_read_bound += core->max_reads_in_flight();
  }
  if (cpu_read_bound > 0) {
    check.set_in_flight_bound(CheckContext::Flow::CpuRead, cpu_read_bound);
  }

  // Invariant auditors. Bounds come from the attached configuration; 0
  // disables a bound where no structural ceiling exists (e.g. the posted
  // write queues).
  SharedLlc* llc = llc_.get();
  check.add_auditor("llc", [llc, &check](Cycle now) {
    audit_llc(check, now, llc->audit_view(/*deep=*/true));
  });
  DramController* dram = dram_.get();
  const Cycle starvation = check.options().starvation_bound;
  check.add_auditor("dram", [dram, &check, starvation](Cycle now) {
    for (unsigned c = 0; c < dram->num_channels(); ++c) {
      audit_channel(check, now,
                    dram->channel(c).audit_view(/*read_bound=*/0,
                                                /*write_bound=*/0, starvation));
    }
  });
  RingNetwork* ring = ring_.get();
  check.add_auditor("ring", [ring, &check](Cycle now) {
    audit_ring(check, now, ring->audit_view(/*horizon=*/0));
  });
  AccessThrottler* atu = atu_.get();
  check.add_auditor("atu", [atu, &check](Cycle now) {
    audit_atu(check, now, atu->check_view());
  });
  FrameRateEstimator* frpu = frpu_.get();
  check.add_auditor("rtp", [frpu, &check](Cycle now) {
    audit_rtp(check, now, frpu->table().check_view());
  });
  check.add_auditor("frpu", [frpu, &check](Cycle now) {
    audit_frpu(check, now, frpu->check_view(base_to_gpu_cycles(now)));
  });

  // Determinism digest sources, one per module. Names become the digest
  // stream's module column (tools/digest_diff pinpoints the first divergent
  // one), so keep them stable.
  Engine* eng = engine_.get();
  StatRegistry* stats = stats_.get();
  check.add_digest_source("engine", [eng] { return eng->digest(); });
  check.add_digest_source("stats", [stats] { return stats->digest(); });
  check.add_digest_source("ring", [ring] { return ring->digest(); });
  check.add_digest_source("llc", [llc] { return llc->digest(); });
  check.add_digest_source("dram", [dram] { return dram->digest(); });
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    CpuCore* core = cores_[i].get();
    check.add_digest_source("cpu" + std::to_string(i),
                            [core] { return core->digest(); });
  }
  GpuPipeline* pipe = pipeline_.get();
  GpuMemInterface* gmi = gmi_.get();
  check.add_digest_source("gpu", [pipe] { return pipe->digest(); });
  check.add_digest_source("gmi", [gmi] { return gmi->digest(); });
  check.add_digest_source("atu", [atu] { return atu->digest(); });
  check.add_digest_source("frpu", [frpu] { return frpu->digest(); });

  // Frame-boundary audits: interpose on the observer chain built by the
  // constructor / attach_telemetry.
  if (pipeline_->observer() != nullptr) {
    auto tee =
        std::make_unique<CheckFrameTee>(*pipeline_->observer(), check, *eng);
    pipeline_->set_observer(tee.get());
    gmi_->set_observer(tee.get());
    check_tee_ = std::move(tee);
  }

  // Periodic execution.
  CheckContext* ctx = &check;
  if (check.options().audit_interval > 0) {
    engine_->add_ticker(check.options().audit_interval, 0,
                        [ctx](Cycle now) { ctx->audit(now); });
  }
  if (check.options().digest_interval > 0) {
    engine_->add_ticker(check.options().digest_interval, 0,
                        [ctx](Cycle now) { ctx->sample_digests(now); });
  }
}

void HeteroCmp::wire_core(unsigned i) {
  CpuCore* core = cores_[i].get();
  core->set_mem_port([this, i](MemRequest&& req) {
    if (req.on_complete) {
      auto cb = std::move(req.on_complete);
      req.on_complete = [this, i, cb = std::move(cb)](Cycle) {
        ring_->send(llc_stop_, i, [this, cb] { cb(engine_->now()); },
                    RingNetwork::Traffic::Cpu);
      };
    }
    ring_->send(i, llc_stop_, [this, r = std::move(req)]() mutable {
      llc_->request(std::move(r));
    }, RingNetwork::Traffic::Cpu);
  });
}

void HeteroCmp::wire_llc() {
  llc_->set_back_invalidate([this](unsigned core, Addr addr) {
    return core < cores_.size() ? cores_[core]->back_invalidate(addr) : false;
  });
  llc_->set_mem_sender([this](MemRequest&& req) {
    const unsigned mc_stop =
        mc_stop_base_ + (dram_->channel_of(req.addr) & 1);
    const auto traffic = req.source.is_gpu() ? RingNetwork::Traffic::Gpu
                                             : RingNetwork::Traffic::Cpu;
    if (req.on_complete) {
      auto cb = std::move(req.on_complete);
      req.on_complete = [this, mc_stop, traffic, cb = std::move(cb)](Cycle) {
        ring_->send(mc_stop, llc_stop_, [this, cb] { cb(engine_->now()); },
                    traffic);
      };
    }
    ring_->send(llc_stop_, mc_stop, [this, r = std::move(req)]() mutable {
      dram_->request(std::move(r));
    }, traffic);
  });
}

void HeteroCmp::freeze_injectors() {
  for (auto& core : cores_) core->freeze();
  pipeline_->freeze();
}

void HeteroCmp::unfreeze_injectors() {
  for (auto& core : cores_) core->unfreeze();
  pipeline_->unfreeze();
}

bool HeteroCmp::quiesced() const {
  if (engine_->pending_events() != 0) return false;
  if (!gmi_->empty()) return false;
  if (!llc_->quiescent()) return false;
  if (!dram_->idle()) return false;
  for (const auto& core : cores_) {
    if (!core->quiescent()) return false;
  }
  return pipeline_->quiescent();
}

void HeteroCmp::drain(Cycle max_cycles) {
  freeze_injectors();
  engine_->run_until([this] { return quiesced(); }, max_cycles);
  if (!quiesced()) {
    unfreeze_injectors();
    throw ckpt::CkptError(
        "simulation failed to quiesce within " + std::to_string(max_cycles) +
        " cycles at the checkpoint barrier (in-flight work never retired)");
  }
}

void HeteroCmp::save_state(ckpt::StateWriter& w) {
  if (!quiesced()) {
    throw ckpt::CkptError(
        "save_state() on a simulation with in-flight work; call drain() "
        "first");
  }
  auto section = [&w](const char* tag, auto&& body) {
    w.begin_section(tag);
    body();
    w.end_section();
  };
  section("engine", [&] { engine_->save(w); });
  section("stats", [&] { stats_->save(w); });
  section("ring", [&] { ring_->save(w); });
  section("llc", [&] { llc_->save(w); });
  section("dram", [&] { dram_->save(w); });
  for (unsigned c = 0; c < dram_->num_channels(); ++c) {
    if (!dram_->scheduler(c).has_ckpt_state()) continue;
    w.begin_section("dramsched" + std::to_string(c));
    dram_->scheduler(c).save(w);
    w.end_section();
  }
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    w.begin_section("cpu" + std::to_string(i));
    cores_[i]->save(w);
    w.end_section();
  }
  section("gpu", [&] { pipeline_->save(w); });
  section("gmi", [&] { gmi_->save(w); });
  section("frpu", [&] { frpu_->save(w); });
  section("atu", [&] { atu_->save(w); });
  section("governor", [&] { governor_->save(w); });
}

void HeteroCmp::load_state(ckpt::StateReader& r, ckpt::RestoreMode mode) {
  std::set<std::string> loaded;
  while (r.next_section()) {
    const std::string tag = r.tag();
    bool handled = true;
    if (tag == "engine") {
      engine_->load(r);
    } else if (tag == "stats") {
      stats_->load(r);
    } else if (tag == "ring") {
      ring_->load(r);
    } else if (tag == "llc") {
      llc_->load(r);
    } else if (tag == "dram") {
      dram_->load(r);
    } else if (tag.rfind("dramsched", 0) == 0) {
      const unsigned c =
          static_cast<unsigned>(std::strtoul(tag.c_str() + 9, nullptr, 10));
      if (c >= dram_->num_channels()) {
        r.fail("snapshot has scheduler state for nonexistent channel " +
               std::to_string(c));
      }
      // A fork across policies leaves the section unclaimed; skip it.
      handled = dram_->scheduler(c).has_ckpt_state();
      if (handled) dram_->scheduler(c).load(r);
    } else if (tag.rfind("cpu", 0) == 0) {
      const unsigned i =
          static_cast<unsigned>(std::strtoul(tag.c_str() + 3, nullptr, 10));
      if (i >= cores_.size()) {
        r.fail("snapshot has state for nonexistent core " + std::to_string(i));
      }
      cores_[i]->load(r);
    } else if (tag == "gpu") {
      pipeline_->load(r);
    } else if (tag == "gmi") {
      gmi_->load(r);
    } else if (tag == "frpu") {
      frpu_->load(r);
    } else if (tag == "atu") {
      atu_->load(r);
    } else if (tag == "governor") {
      governor_->load(r);
    } else {
      handled = false;  // unknown section: skipped for forward compatibility
    }
    if (handled) {
      loaded.insert(tag);
      r.expect_section_end();
    }
  }

  std::set<std::string> expected = {"engine", "stats", "ring", "llc",
                                    "dram",   "gpu",   "gmi", "frpu",
                                    "atu",    "governor"};
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    expected.insert("cpu" + std::to_string(i));
  }
  if (mode == ckpt::RestoreMode::kResume) {
    // An exact resume must restore the live policy's scheduler state too.
    for (unsigned c = 0; c < dram_->num_channels(); ++c) {
      if (dram_->scheduler(c).has_ckpt_state()) {
        expected.insert("dramsched" + std::to_string(c));
      }
    }
  }
  for (const std::string& tag : expected) {
    if (loaded.count(tag) == 0) {
      throw ckpt::CkptError("snapshot is missing the '" + tag +
                            "' section required to restore this run");
    }
  }
}

void HeteroCmp::wire_gpu() {
  gmi_->set_sender([this](MemRequest&& req) {
    if (req.on_complete) {
      auto cb = std::move(req.on_complete);
      req.on_complete = [this, cb = std::move(cb)](Cycle) {
        ring_->send(llc_stop_, gpu_stop_, [this, cb] { cb(engine_->now()); },
                    RingNetwork::Traffic::Gpu);
      };
    }
    ring_->send(gpu_stop_, llc_stop_, [this, r = std::move(req)]() mutable {
      llc_->request(std::move(r));
    }, RingNetwork::Traffic::Gpu);
  });
}

}  // namespace gpuqos
