// Parallel sweep runner.
//
// Every experiment sweeps independent simulations (mixes × policies ×
// configs); each HeteroCmp owns its engine, RNG, and stat registry, so the
// runs are embarrassingly parallel. run_many() executes a batch of such jobs
// on a small thread pool and returns the results in job order, making a
// pooled sweep's output byte-identical to the serial one.
//
// Thread model: workers claim jobs from an atomic counter, so scheduling is
// nondeterministic but result placement (results[i] <- jobs[i]) is not. Log
// cycle sources/sinks are thread-local (common/log.hpp), so each worker's
// simulation stamps its own cycles. The first exception thrown by any job is
// rethrown on the caller's thread after the pool drains.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace gpuqos {

/// Worker count for a batch of `jobs`: GPUQOS_THREADS when set (0 means
/// "hardware concurrency"), else hardware concurrency; never more than the
/// job count, never less than 1.
[[nodiscard]] unsigned sweep_thread_count(std::size_t jobs);

/// Serializes writes that leave a sweep job (bench result-cache files,
/// progress prints). Process-wide on purpose: the bench cache is shared
/// between harness binaries that may one day run concurrently.
[[nodiscard]] std::mutex& sweep_io_mutex();

/// Run independent jobs, at most `threads` at a time (0 = auto via
/// sweep_thread_count). results[i] always holds jobs[i]'s value. With one
/// thread (or one job) the jobs run inline on the caller's thread, in order —
/// the serial reference the tests compare the pool against.
template <typename R>
[[nodiscard]] std::vector<R> run_many(std::vector<std::function<R()>> jobs,
                                      unsigned threads = 0) {
  const std::size_t n = jobs.size();
  if (threads == 0) threads = sweep_thread_count(n);

  if (threads <= 1 || n <= 1) {
    std::vector<R> out;
    out.reserve(n);
    for (auto& job : jobs) out.push_back(job());
    return out;
  }

  std::vector<std::optional<R>> slots(n);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        slots[i].emplace(jobs[i]());
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (error) std::rethrow_exception(error);
  std::vector<R> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace gpuqos
