// Parallel sweep runner.
//
// Every experiment sweeps independent simulations (mixes × policies ×
// configs); each HeteroCmp owns its engine, RNG, and stat registry, so the
// runs are embarrassingly parallel. run_many() executes a batch of such jobs
// on a small thread pool and returns the results in job order, making a
// pooled sweep's output byte-identical to the serial one.
//
// Thread model: workers claim jobs from an atomic counter, so scheduling is
// nondeterministic but result placement (results[i] <- jobs[i]) is not. Log
// cycle sources/sinks are thread-local (common/log.hpp), so each worker's
// simulation stamps its own cycles. The first exception thrown by any job is
// rethrown on the caller's thread after the pool drains.
//
// Memory locality: result slots are cache-line aligned (two workers
// finishing adjacent jobs never write the same line), the job-claim counter
// and failure flag live on their own lines, and every job allocates on the
// worker thread that runs it — the allocator's per-thread arenas (glibc
// malloc) keep one job's engine/stat heap out of another's pages, which is
// what lets an 8-job sweep scale instead of serializing on a shared arena
// lock. bench/perf_sweep records the resulting scaling curve.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gpuqos {

/// Worker count for a batch of `jobs`: GPUQOS_THREADS when set (0 means
/// "hardware concurrency"), else hardware concurrency; never more than the
/// job count, never less than 1.
[[nodiscard]] unsigned sweep_thread_count(std::size_t jobs);

/// Serializes writes that leave a sweep job (bench result-cache files,
/// progress prints). Process-wide on purpose: the bench cache is shared
/// between harness binaries that may one day run concurrently.
[[nodiscard]] std::mutex& sweep_io_mutex();

/// Completed-job manifest for resumable sweeps (docs/CHECKPOINT.md §sweeps).
/// A long sweep records every finished job — a caller-chosen key plus the
/// serialized result — into a manifest file; a rerun loads the manifest and
/// skips the jobs it already holds. The file reuses the snapshot container
/// framing (header, one CRC-guarded section per job keyed by its tag).
///
/// record() APPENDS one sealed section (O(1) per job; the old
/// rewrite-the-whole-file scheme made an n-job sweep pay O(n^2) manifest
/// bytes). Appending means a crash can leave a torn section at the tail and a
/// re-recorded key appears twice; the loader is therefore lenient — it keeps
/// every section up to the first malformed one (latest duplicate wins) and
/// then compacts the file atomically (tmp + rename), so a resumed sweep loses
/// at most the one job that was mid-append when the process died. A file that
/// is not a gpuqos container at all (bad magic/version) still throws
/// ckpt::CkptError: that is a wrong path, not a torn tail.
class SweepManifest {
 public:
  /// Loads `path` when it exists; a missing file starts an empty manifest.
  explicit SweepManifest(std::string path);

  [[nodiscard]] bool has(const std::string& key) const;
  /// Serialized result for `key`, or nullptr when absent.
  [[nodiscard]] const std::string* result(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Record a finished job: append one CRC-guarded section to the manifest
  /// file (under sweep_io_mutex — safe to call from pool workers).
  void record(const std::string& key, const std::string& serialized);

  /// Sections dropped or deduplicated by the last load (0 = file was clean).
  [[nodiscard]] std::size_t recovered() const { return recovered_; }

 private:
  void append_locked(const std::string& key, const std::string& serialized);
  void compact_locked() const;

  std::string path_;
  std::map<std::string, std::string> entries_;
  std::size_t recovered_ = 0;
  mutable std::mutex mutex_;
};

/// Run independent jobs, at most `threads` at a time (0 = auto via
/// sweep_thread_count). results[i] always holds jobs[i]'s value. With one
/// thread (or one job) the jobs run inline on the caller's thread, in order —
/// the serial reference the tests compare the pool against.
template <typename R>
[[nodiscard]] std::vector<R> run_many(std::vector<std::function<R()>> jobs,
                                      unsigned threads = 0) {
  const std::size_t n = jobs.size();
  if (threads == 0) threads = sweep_thread_count(n);

  if (threads <= 1 || n <= 1) {
    std::vector<R> out;
    out.reserve(n);
    for (auto& job : jobs) out.push_back(job());
    return out;
  }

  // One cache line per result slot: adjacent std::optional<R> objects would
  // otherwise share lines, and two workers completing neighboring jobs would
  // ping-pong them for the whole emplace (R is typically a multi-hundred-byte
  // stats struct). The claim counter and failure flag get the same treatment
  // so job claiming never invalidates a result line.
  struct alignas(64) Slot {
    std::optional<R> value;
  };
  struct alignas(64) AlignedCounter {
    std::atomic<std::size_t> v{0};
  };
  struct alignas(64) AlignedFlag {
    std::atomic<bool> v{false};
  };
  std::vector<Slot> slots(n);
  AlignedCounter next;
  AlignedFlag failed;
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.v.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.v.load(std::memory_order_relaxed)) return;
      try {
        slots[i].value.emplace(jobs[i]());
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.v.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (error) std::rethrow_exception(error);
  std::vector<R> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot.value));
  return out;
}

/// run_many with mid-sweep checkpoint/resume: `keys[i]` names jobs[i] in the
/// manifest. Jobs already recorded are decoded from the manifest instead of
/// re-run; every job that does run is recorded the moment it finishes, so a
/// killed sweep resumes from the last completed job. Results keep job order,
/// and a resumed sweep returns exactly what the uninterrupted one would
/// (decode(encode(r)) must round-trip).
template <typename R>
[[nodiscard]] std::vector<R> run_many_resumable(
    std::vector<std::function<R()>> jobs, const std::vector<std::string>& keys,
    SweepManifest& manifest, std::function<std::string(const R&)> encode,
    std::function<R(const std::string&)> decode, unsigned threads = 0) {
  const std::size_t n = jobs.size();
  if (keys.size() != n) {
    throw std::invalid_argument("run_many_resumable: keys/jobs size mismatch");
  }

  // Pending jobs wrap the original thunk with a manifest record; completed
  // ones are filled from the manifest after the pool drains.
  std::vector<std::function<R()>> pending;
  std::vector<std::size_t> pending_index;
  for (std::size_t i = 0; i < n; ++i) {
    if (manifest.has(keys[i])) continue;
    pending_index.push_back(i);
    pending.push_back([&jobs, &keys, &manifest, &encode, i] {
      R r = jobs[i]();
      manifest.record(keys[i], encode(r));
      return r;
    });
  }

  std::vector<R> fresh = run_many(std::move(pending), threads);

  std::vector<std::optional<R>> slots(n);
  for (std::size_t j = 0; j < pending_index.size(); ++j) {
    slots[pending_index[j]].emplace(std::move(fresh[j]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (slots[i].has_value()) continue;
    slots[i].emplace(decode(*manifest.result(keys[i])));
  }

  std::vector<R> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace gpuqos
