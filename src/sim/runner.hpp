// Experiment runner: standalone and heterogeneous simulations with warm-up,
// per-application measurement windows, and statistics deltas — the procedure
// of Section V-B (warm-up, then each CPU application commits its quota while
// early finishers keep running; the GPU renders its frame sequence).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/hetero_cmp.hpp"
#include "workloads/gpu_apps.hpp"
#include "workloads/mixes.hpp"

namespace gpuqos {

class CheckContext;
class Telemetry;

/// Instruction/frame budgets (scaled from the paper's 200M warm-up + 450M
/// measured instructions; see DESIGN.md §2). GPUQOS_FAST=1 shrinks budgets
/// further for smoke tests.
struct RunScale {
  std::uint64_t warm_instrs = 200'000;
  std::uint64_t measure_instrs = 1'000'000;
  unsigned warm_frames = 6;  // also lets the QoS controller converge
  unsigned measure_frames = 0;  // 0 = the app's full sequence length
  std::uint64_t warm_min_cycles = 3'000'000;  // equalizes warm-up across
                                              // standalone and hetero runs
  std::uint64_t max_cycles = 2'000'000'000;

  [[nodiscard]] static RunScale from_env();
};

struct HeteroResult {
  std::string mix_id;
  Policy policy = Policy::Baseline;
  std::vector<int> spec_ids;
  std::vector<double> cpu_ipc;   // per application, measurement window
  double fps = 0.0;              // effective frames per second
  double gpu_frame_cycles = 0.0; // average GPU cycles per measured frame
  double seconds = 0.0;          // measurement window (GPU portion)
  bool hit_cycle_cap = false;
  // Frame-rate estimator accuracy over the whole run (Fig. 8): mean signed
  // percent error of the mid-frame prediction vs. the actual frame cycles.
  double est_error_pct = 0.0;
  std::uint64_t est_samples = 0;
  std::uint64_t est_relearns = 0;
  std::map<std::string, std::uint64_t> stat_delta;  // end - warm snapshot

  [[nodiscard]] std::uint64_t stat(const std::string& name) const {
    auto it = stat_delta.find(name);
    return it == stat_delta.end() ? 0 : it->second;
  }
};

/// Standalone CPU application on the CMP (GPU idle). Returns measured IPC.
[[nodiscard]] double standalone_cpu_ipc(const SimConfig& cfg, int spec_id,
                                        const RunScale& scale);

/// Optional attachments and checkpoint controls for a run — the consolidated
/// replacement for the optional-pointer tail that `run_hetero` and
/// `standalone_gpu` used to take.
///
/// `telemetry`: attached to the CMP before the run and finalized (open spans
/// closed, stat registry captured) before the CMP is destroyed. `check`: the
/// correctness-analysis layer (docs/ANALYSIS.md), attached and finalized the
/// same way; builds with GPUQOS_STRICT=ON attach a default-configured context
/// even when none is passed.
struct RunHooks {
  Telemetry* telemetry = nullptr;
  CheckContext* check = nullptr;

  // --- Checkpoint/restore (docs/CHECKPOINT.md) ----------------------------
  /// Load this snapshot before running and continue from its state.
  std::string resume_path;
  /// Snapshot destination: written (atomically) at every `ckpt_interval`
  /// barrier when the interval is set, or once at the end of warm-up
  /// otherwise. Each write overwrites the previous one, so the file always
  /// holds the latest resume point.
  std::string ckpt_out;
  /// Barrier-drain period in base cycles (0 = no periodic barriers).
  /// Barriers are part of the simulated schedule: the drain bubble happens
  /// whether or not a snapshot is written, and a resumed run inherits the
  /// interval stored in the snapshot so both runs share one schedule.
  Cycle ckpt_interval = 0;

  // --- Warm-state forking (in-memory snapshots) ---------------------------
  /// In-memory alternative to `resume_path` (takes precedence).
  const std::vector<std::uint8_t>* resume_data = nullptr;
  /// kFork relaxes meta validation so a warm-up taken under one policy can
  /// seed a run under another (see warm_hetero_snapshot).
  ckpt::RestoreMode resume_mode = ckpt::RestoreMode::kResume;
  /// When set, the run stops at the end of warm-up and deposits a drained
  /// warm-state snapshot here instead of measuring.
  std::vector<std::uint8_t>* warm_capture = nullptr;
};

/// Standalone GPU application (CPU cores idle).
[[nodiscard]] HeteroResult standalone_gpu(const SimConfig& cfg,
                                          const GpuAppDesc& app,
                                          const RunScale& scale,
                                          const RunHooks& hooks = {});

/// Heterogeneous run of a Table III mix under `policy`.
[[nodiscard]] HeteroResult run_hetero(const SimConfig& cfg,
                                      const HeteroMix& mix, Policy policy,
                                      const RunScale& scale,
                                      const RunHooks& hooks = {});

/// Warm-state forking, step 1: run the warm-up phase once under `policy`,
/// drain, and return the snapshot bytes (docs/CHECKPOINT.md). Policy-specific
/// scheduler state is sectioned separately, so the snapshot can seed any
/// policy via RunHooks{resume_data, RestoreMode::kFork}.
[[nodiscard]] std::vector<std::uint8_t> warm_hetero_snapshot(
    const SimConfig& cfg, const HeteroMix& mix, Policy policy,
    const RunScale& scale);

/// Warm-state forking, step 2 (convenience): warm once under
/// `policies.front()`, then fork the warm state into a measured run per
/// policy. Results are in `policies` order.
[[nodiscard]] std::vector<HeteroResult> run_hetero_forked(
    const SimConfig& cfg, const HeteroMix& mix,
    const std::vector<Policy>& policies, const RunScale& scale);

/// Convenience: standalone IPCs for every CPU application of a mix.
[[nodiscard]] std::vector<double> standalone_ipcs(const SimConfig& cfg,
                                                  const HeteroMix& mix,
                                                  const RunScale& scale);

}  // namespace gpuqos
