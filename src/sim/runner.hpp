// Experiment runner: standalone and heterogeneous simulations with warm-up,
// per-application measurement windows, and statistics deltas — the procedure
// of Section V-B (warm-up, then each CPU application commits its quota while
// early finishers keep running; the GPU renders its frame sequence).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/hetero_cmp.hpp"
#include "workloads/gpu_apps.hpp"
#include "workloads/mixes.hpp"

namespace gpuqos {

class CheckContext;
class Telemetry;

/// Instruction/frame budgets (scaled from the paper's 200M warm-up + 450M
/// measured instructions; see DESIGN.md §2). GPUQOS_FAST=1 shrinks budgets
/// further for smoke tests.
struct RunScale {
  std::uint64_t warm_instrs = 200'000;
  std::uint64_t measure_instrs = 1'000'000;
  unsigned warm_frames = 6;  // also lets the QoS controller converge
  unsigned measure_frames = 0;  // 0 = the app's full sequence length
  std::uint64_t warm_min_cycles = 3'000'000;  // equalizes warm-up across
                                              // standalone and hetero runs
  std::uint64_t max_cycles = 2'000'000'000;

  [[nodiscard]] static RunScale from_env();
};

struct HeteroResult {
  std::string mix_id;
  Policy policy = Policy::Baseline;
  std::vector<int> spec_ids;
  std::vector<double> cpu_ipc;   // per application, measurement window
  double fps = 0.0;              // effective frames per second
  double gpu_frame_cycles = 0.0; // average GPU cycles per measured frame
  double seconds = 0.0;          // measurement window (GPU portion)
  bool hit_cycle_cap = false;
  // Frame-rate estimator accuracy over the whole run (Fig. 8): mean signed
  // percent error of the mid-frame prediction vs. the actual frame cycles.
  double est_error_pct = 0.0;
  std::uint64_t est_samples = 0;
  std::uint64_t est_relearns = 0;
  std::map<std::string, std::uint64_t> stat_delta;  // end - warm snapshot

  [[nodiscard]] std::uint64_t stat(const std::string& name) const {
    auto it = stat_delta.find(name);
    return it == stat_delta.end() ? 0 : it->second;
  }
};

/// Standalone CPU application on the CMP (GPU idle). Returns measured IPC.
[[nodiscard]] double standalone_cpu_ipc(const SimConfig& cfg, int spec_id,
                                        const RunScale& scale);

/// Standalone GPU application (CPU cores idle). When `telemetry` is non-null
/// it is attached to the CMP before the run and finalized (open spans closed,
/// stat registry captured) before the CMP is destroyed. When `check` is
/// non-null the correctness-analysis layer (docs/ANALYSIS.md) is attached
/// the same way and finalized after the run; builds with GPUQOS_STRICT=ON
/// attach a default-configured context even when none is passed.
[[nodiscard]] HeteroResult standalone_gpu(const SimConfig& cfg,
                                          const GpuAppDesc& app,
                                          const RunScale& scale,
                                          Telemetry* telemetry = nullptr,
                                          CheckContext* check = nullptr);

/// Heterogeneous run of a Table III mix under `policy`; `telemetry` and
/// `check` as above.
[[nodiscard]] HeteroResult run_hetero(const SimConfig& cfg,
                                      const HeteroMix& mix, Policy policy,
                                      const RunScale& scale,
                                      Telemetry* telemetry = nullptr,
                                      CheckContext* check = nullptr);

/// Convenience: standalone IPCs for every CPU application of a mix.
[[nodiscard]] std::vector<double> standalone_ipcs(const SimConfig& cfg,
                                                  const HeteroMix& mix,
                                                  const RunScale& scale);

}  // namespace gpuqos
