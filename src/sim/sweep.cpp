#include "sim/sweep.hpp"

#include <cstdlib>

namespace gpuqos {

unsigned sweep_thread_count(std::size_t jobs) {
  unsigned threads = 0;
  if (const char* env = std::getenv("GPUQOS_THREADS")) {
    threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads > jobs) threads = static_cast<unsigned>(jobs);
  if (threads == 0) threads = 1;
  return threads;
}

std::mutex& sweep_io_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace gpuqos
