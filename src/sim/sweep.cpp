#include "sim/sweep.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "check/check.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {
namespace {

/// Manifest section payload: the same u32-length-prefixed string framing
/// StateWriter::str() emits, kept so pre-append-era manifests load unchanged.
std::vector<std::uint8_t> str_payload(const std::string& s) {
  std::vector<std::uint8_t> payload;
  const auto len = checked_narrow<std::uint32_t>(s.size());
  payload.resize(sizeof(len) + s.size());
  std::memcpy(payload.data(), &len, sizeof(len));
  std::memcpy(payload.data() + sizeof(len), s.data(), s.size());
  return payload;
}

}  // namespace

unsigned sweep_thread_count(std::size_t jobs) {
  unsigned threads = 0;
  if (const char* env = std::getenv("GPUQOS_THREADS")) {
    threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads > jobs) threads = static_cast<unsigned>(jobs);
  if (threads == 0) threads = 1;
  return threads;
}

std::mutex& sweep_io_mutex() {
  // NOLINT-gpuqos(thread-purity): audited — serializes manifest/stdout IO
  // only; it never orders simulation work, so results stay deterministic.
  static std::mutex m;
  return m;
}

SweepManifest::SweepManifest(std::string path) : path_(std::move(path)) {
  if (!std::filesystem::exists(path_)) return;
  const std::vector<std::uint8_t> data = ckpt::read_snapshot_file(path_);

  // Header check via StateReader (throws on bad magic/version — a file that
  // was never a manifest). Section iteration is manual and lenient: a torn
  // append at the tail truncates mid-frame, and StateReader would reject the
  // whole file where we want "everything before the tear".
  { ckpt::StateReader header_check{data}; }

  std::size_t pos = sizeof(ckpt::kSnapshotMagic) + sizeof(ckpt::kSnapshotVersion);
  bool torn = false;
  while (pos < data.size() && !torn) {
    auto take = [&](void* out, std::size_t n) {
      if (pos + n > data.size()) return false;
      std::memcpy(out, data.data() + pos, n);
      pos += n;
      return true;
    };
    std::uint16_t tag_len = 0;
    std::uint64_t payload_len = 0;
    std::uint32_t crc = 0;
    std::string key;
    if (!take(&tag_len, sizeof(tag_len)) || tag_len == 0 ||
        pos + tag_len > data.size()) {
      torn = true;
      break;
    }
    key.assign(reinterpret_cast<const char*>(data.data() + pos), tag_len);
    pos += tag_len;
    if (!take(&payload_len, sizeof(payload_len)) ||
        !take(&crc, sizeof(crc)) || payload_len > data.size() - pos ||
        ckpt::crc32(data.data() + pos, payload_len) != crc) {
      torn = true;
      break;
    }
    // Payload = u32 length + string bytes (StateWriter::str framing).
    std::uint32_t str_len = 0;
    if (payload_len < sizeof(str_len)) {
      torn = true;
      break;
    }
    std::memcpy(&str_len, data.data() + pos, sizeof(str_len));
    if (str_len != payload_len - sizeof(str_len)) {
      torn = true;
      break;
    }
    if (entries_.count(key) != 0) ++recovered_;  // duplicate: latest wins
    entries_[key].assign(
        reinterpret_cast<const char*>(data.data() + pos + sizeof(str_len)),
        str_len);
    pos += payload_len;
  }
  if (torn) ++recovered_;  // the dropped tail section

  if (recovered_ > 0) {
    std::fprintf(stderr,
                 "[sweep] manifest '%s': recovered %zu entries, dropped/"
                 "deduped %zu; compacting\n",
                 path_.c_str(), entries_.size(), recovered_);
    std::lock_guard<std::mutex> io(sweep_io_mutex());
    std::lock_guard<std::mutex> lock(mutex_);
    compact_locked();
  }
}

bool SweepManifest::has(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) != 0;
}

const std::string* SweepManifest::result(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void SweepManifest::record(const std::string& key,
                           const std::string& serialized) {
  // Workers record concurrently: mutex_ guards entries_, sweep_io_mutex
  // serializes the file append against other sweep-side writers.
  std::lock_guard<std::mutex> io(sweep_io_mutex());
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = serialized;
  append_locked(key, serialized);
}

void SweepManifest::append_locked(const std::string& key,
                                  const std::string& serialized) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    throw ckpt::CkptError("cannot open manifest '" + path_ + "' for append");
  }
  // One buffered frame (header first on a fresh file) so the common torn
  // state is "last section missing", which the loader recovers from.
  std::vector<std::uint8_t> frame;
  if (std::ftell(f) == 0) frame = ckpt::container_header();
  const std::vector<std::uint8_t> section =
      ckpt::encode_section(key, str_payload(serialized));
  frame.insert(frame.end(), section.begin(), section.end());
  const std::size_t written = std::fwrite(frame.data(), 1, frame.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != frame.size() || !flushed) {
    throw ckpt::CkptError("short append to manifest '" + path_ + "'");
  }
}

void SweepManifest::compact_locked() const {
  ckpt::StateWriter w;
  for (const auto& [key, value] : entries_) {
    w.begin_section(key);
    w.str(value);
    w.end_section();
  }
  ckpt::write_snapshot_file(path_, w.finish());  // atomic tmp + rename
}

}  // namespace gpuqos
