#include "sim/sweep.hpp"

#include <cstdlib>
#include <filesystem>
#include <utility>

#include "ckpt/state_io.hpp"

namespace gpuqos {

unsigned sweep_thread_count(std::size_t jobs) {
  unsigned threads = 0;
  if (const char* env = std::getenv("GPUQOS_THREADS")) {
    threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads > jobs) threads = static_cast<unsigned>(jobs);
  if (threads == 0) threads = 1;
  return threads;
}

std::mutex& sweep_io_mutex() {
  // NOLINT-gpuqos(thread-purity): audited — serializes manifest/stdout IO
  // only; it never orders simulation work, so results stay deterministic.
  static std::mutex m;
  return m;
}

SweepManifest::SweepManifest(std::string path) : path_(std::move(path)) {
  if (!std::filesystem::exists(path_)) return;
  ckpt::StateReader r(ckpt::read_snapshot_file(path_));
  while (r.next_section()) {
    entries_[r.tag()] = r.str();
    r.expect_section_end();
  }
}

bool SweepManifest::has(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) != 0;
}

const std::string* SweepManifest::result(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void SweepManifest::record(const std::string& key,
                           const std::string& serialized) {
  // Workers record concurrently: mutex_ guards entries_, sweep_io_mutex
  // serializes the file rewrite against other sweep-side writers.
  std::lock_guard<std::mutex> io(sweep_io_mutex());
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = serialized;
  rewrite_locked();
}

void SweepManifest::rewrite_locked() const {
  ckpt::StateWriter w;
  for (const auto& [key, value] : entries_) {
    w.begin_section(key);
    w.str(value);
    w.end_section();
  }
  ckpt::write_snapshot_file(path_, w.finish());
}

}  // namespace gpuqos
