// The simulated heterogeneous chip-multiprocessor (Table I): up to four CPU
// cores and one GPU on a bidirectional ring with a shared SRRIP LLC and
// DDR3-2133 memory controllers, plus the QoS machinery and all evaluated
// policies wired per `Policy`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/llc.hpp"
#include "ckpt/snapshot.hpp"
#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/qos_signals.hpp"
#include "common/stats.hpp"
#include "cpu/core.hpp"
#include "dram/controller.hpp"
#include "gpu/memiface.hpp"
#include "gpu/pipeline.hpp"
#include "gpu/scene.hpp"
#include "qos/atu.hpp"
#include "qos/frpu.hpp"
#include "qos/governor.hpp"
#include "ring/ring.hpp"

namespace gpuqos {

class CheckContext;
class Telemetry;

/// Memory-system management policies evaluated in the paper.
enum class Policy {
  Baseline,         // FR-FCFS, no throttling (Section II / VI baseline)
  Throttle,         // GPU access throttling only (Fig. 9 "Throttled")
  ThrottleCpuPrio,  // + CPU priority in the DRAM scheduler ("ThrotCPUprio")
  Sms09,            // staged memory scheduler, p = 0.9
  Sms0,             // staged memory scheduler, p = 0
  DynPrio,          // dynamic priority scheduler (DAC 2012)
  Helm,             // TLP-aware selective LLC bypass (PACT 2013)
  ForceBypass,      // all GPU read misses bypass the LLC (Fig. 3)
};

[[nodiscard]] std::string to_string(Policy p);

/// Inverse of to_string: parse a policy name ("Baseline", "ThrotCPUprio",
/// "SMS-0.9", ...). Returns false on an unknown name. The one policy parser
/// shared by the CLI drivers and the service layer (src/svc).
[[nodiscard]] bool policy_from_string(const std::string& name, Policy& out);

/// Every evaluated policy, in the canonical reporting order.
[[nodiscard]] const std::vector<Policy>& all_policies();

/// FNV-1a over every SimConfig field that shapes simulated state; stored in
/// the snapshot meta section and compared on restore (docs/CHECKPOINT.md).
[[nodiscard]] std::uint64_t config_digest(const SimConfig& cfg);

class HeteroCmp {
 public:
  /// `cpu_profiles` may hold fewer entries than cfg.cpu_cores (standalone
  /// GPU runs pass none); `gpu_frames` may be empty (standalone CPU runs).
  HeteroCmp(const SimConfig& cfg, Policy policy,
            std::vector<SpecProfile> cpu_profiles,
            std::vector<SceneFrame> gpu_frames, double fps_scale);
  ~HeteroCmp();

  HeteroCmp(const HeteroCmp&) = delete;
  HeteroCmp& operator=(const HeteroCmp&) = delete;

  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] StatRegistry& stats() { return *stats_; }
  [[nodiscard]] std::size_t num_cores() const { return cores_.size(); }
  [[nodiscard]] CpuCore& core(std::size_t i) { return *cores_[i]; }
  [[nodiscard]] GpuPipeline& gpu() { return *pipeline_; }
  [[nodiscard]] GpuMemInterface& gmi() { return *gmi_; }
  [[nodiscard]] SharedLlc& llc() { return *llc_; }
  [[nodiscard]] DramController& dram() { return *dram_; }
  [[nodiscard]] FrameRateEstimator& frpu() { return *frpu_; }
  [[nodiscard]] AccessThrottler& atu() { return *atu_; }
  [[nodiscard]] QosSignals& signals() { return signals_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] Policy policy() const { return policy_; }
  [[nodiscard]] bool has_gpu_work() const { return has_gpu_work_; }
  [[nodiscard]] double fps_scale() const { return fps_scale_; }

  /// Wire the observability layer through every component: stage-latency
  /// histograms (ring, LLC, DRAM), the governor's QoS decision journal, frame
  /// spans in the Chrome trace, and — when `telemetry.options()` asks for it —
  /// an interval sampler ticker over the stat registry. The telemetry object
  /// must outlive this HeteroCmp. Call at most once, before running.
  void attach_telemetry(Telemetry& telemetry);
  [[nodiscard]] Telemetry* telemetry() { return telemetry_; }

  /// Wire the correctness-analysis layer (docs/ANALYSIS.md) through every
  /// component: the conservation ledger (cores, GMI, DRAM channels, ring),
  /// the invariant auditors with bounds derived from this configuration, and
  /// per-module digest sources. Registers audit/digest tickers per
  /// `check.options()` and re-audits at every GPU frame boundary. The context
  /// must outlive this HeteroCmp. Call at most once, before running, and
  /// after attach_telemetry (the frame tee wraps the current observer).
  void attach_checks(CheckContext& check);
  [[nodiscard]] CheckContext* check() { return check_; }

  // --- Checkpoint/restore (docs/CHECKPOINT.md) -----------------------------
  // In-flight work (memory requests, ring messages, DRAM commands) lives in
  // engine-event closures and cannot be serialized, so a snapshot is taken at
  // a *drain barrier*: freeze the injectors (CPU cores + GPU pipeline), run
  // the engine until every in-flight transaction retires, then serialize the
  // remaining pure-data state.

  /// Stop the CPU cores and the GPU pipeline from issuing new work. The GMI
  /// stays live so its queue drains through the LLC.
  void freeze_injectors();
  void unfreeze_injectors();

  /// True when nothing is in flight anywhere: no pending engine events, GMI
  /// queue empty, LLC MSHRs/deferred queues empty, DRAM idle, every core's
  /// misses and prefetches retired, every GPU fragment's reads returned.
  [[nodiscard]] bool quiesced() const;

  /// Freeze the injectors and run the engine until quiesced(). Throws
  /// ckpt::CkptError (and unfreezes) if the bound is hit. Leaves the
  /// injectors frozen; the caller unfreezes after snapshotting.
  void drain(Cycle max_cycles = 10'000'000);

  /// Serialize every module as one tagged section. Requires quiesced();
  /// the caller writes the meta (and any run-level) sections first.
  void save_state(ckpt::StateWriter& w);

  /// Restore module sections from `r` until the stream ends. Unknown tags
  /// are skipped (forward compatibility); under kResume every expected
  /// section must be present, under kFork policy-specific scheduler state
  /// may be absent or is skipped when the live policy cannot use it.
  void load_state(ckpt::StateReader& r, ckpt::RestoreMode mode);

 private:
  void wire_core(unsigned i);
  void wire_llc();
  void wire_gpu();

  SimConfig cfg_;
  Policy policy_;
  double fps_scale_;
  bool has_gpu_work_;
  QosSignals signals_;

  std::unique_ptr<StatRegistry> stats_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<RingNetwork> ring_;
  std::unique_ptr<SharedLlc> llc_;
  std::unique_ptr<DramController> dram_;
  std::vector<std::unique_ptr<CpuCore>> cores_;
  std::unique_ptr<GpuMemInterface> gmi_;
  std::unique_ptr<GpuPipeline> pipeline_;
  std::unique_ptr<FrameRateEstimator> frpu_;
  std::unique_ptr<AccessThrottler> atu_;
  std::unique_ptr<QosGovernor> governor_;
  std::unique_ptr<LlcBypassPolicy> bypass_;
  Telemetry* telemetry_ = nullptr;
  std::unique_ptr<FrameObserver> frame_tee_;  // frpu + telemetry fan-out
  CheckContext* check_ = nullptr;
  std::unique_ptr<FrameObserver> check_tee_;  // frame-boundary audits

  unsigned gpu_stop_ = 0;
  unsigned llc_stop_ = 0;
  unsigned mc_stop_base_ = 0;
};

}  // namespace gpuqos
