// Memory controller front-end: address mapping (row:bank:column:channel,
// 64 B channel interleave) and per-channel command clocking.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/mem_request.hpp"
#include "common/stats.hpp"
#include "dram/channel.hpp"
#include "dram/scheduler.hpp"

namespace gpuqos {

class CheckContext;
class Profiler;
class Telemetry;

class DramController {
 public:
  using SchedulerFactory =
      std::function<std::unique_ptr<IDramScheduler>(unsigned channel)>;

  /// Builds `cfg.channels` channels; each gets its own scheduler instance
  /// from `factory` and a ticker at the DRAM command clock.
  DramController(Engine& engine, const DramConfig& cfg, StatRegistry& stats,
                 const SchedulerFactory& factory);

  /// Accept a block request (from the LLC side).
  void request(MemRequest&& req);

  /// Forward the telemetry hook to every channel.
  void set_telemetry(Telemetry* telemetry);
  void set_profiler(Profiler* prof);

  /// Forward the conservation-ledger hook to every channel.
  void set_check(CheckContext* check);

  /// FNV-1a digest over every channel (banks, queues, bus state).
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint every channel (docs/CHECKPOINT.md); requires idle().
  /// Scheduler state is sectioned separately by the owner (policy-specific).
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

  [[nodiscard]] IDramScheduler& scheduler(unsigned i) {
    return *schedulers_[i];
  }

  [[nodiscard]] unsigned channel_of(Addr addr) const;
  [[nodiscard]] unsigned bank_of(Addr addr) const;
  [[nodiscard]] std::uint64_t row_of(Addr addr) const;

  [[nodiscard]] bool idle() const;
  [[nodiscard]] Channel& channel(unsigned i) { return *channels_[i]; }
  [[nodiscard]] unsigned num_channels() const {
    return checked_narrow<unsigned>(channels_.size());
  }

 private:
  DramConfig cfg_;            // ckpt:skip digest:skip: construction parameter
  std::uint64_t col_blocks_;  // ckpt:skip digest:skip: address-map constant
  // Scheduler state is checkpointed by the runner in its own section (see
  // hetero_cmp save_state); schedulers keep no digest source of their own.
  std::vector<std::unique_ptr<IDramScheduler>> schedulers_;  // ckpt:skip digest:skip
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace gpuqos
