#include "dram/frfcfs.hpp"

namespace gpuqos {

std::int64_t FrFcfsScheduler::pick(const DramQueue& queue,
                                   const BankView& banks, Cycle now) {
  if (queue.empty()) return -1;
  // Every return path below requires a bank that can take a command at
  // `now`; while all banks are mid-activate the O(queue) scan is a no-op.
  if (!banks.any_ready(now)) return -1;

  // Starvation guard: once the oldest request exceeds the age cap it wins,
  // but only when its bank can actually take a command — otherwise other
  // banks keep working while its activate completes.
  if (now - queue.arrival(0) > starvation_cap_ &&
      banks.bank_ready_at(queue.bank(0)) <= now) {
    return static_cast<std::int64_t>(queue.id(0));
  }

  // First ready: the oldest row-buffer hit whose bank can take a CAS now.
  // The scan reads only the packed bank/row lanes.
  std::ptrdiff_t activate = -1;
  const std::size_t n = queue.size();
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned bank = queue.bank(i);
    if (banks.bank_ready_at(bank) > now) continue;
    if (banks.is_row_hit(bank, queue.row(i))) {
      return static_cast<std::int64_t>(queue.id(i));
    }
    // Oldest conflict on a free bank.
    if (activate < 0) activate = static_cast<std::ptrdiff_t>(i);
  }
  // No issuable hit: open a row for the oldest actionable conflict.
  if (activate >= 0) {
    return static_cast<std::int64_t>(
        queue.id(static_cast<std::size_t>(activate)));
  }
  return -1;  // every candidate bank is mid-activate
}

}  // namespace gpuqos
