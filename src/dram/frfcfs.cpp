#include "dram/frfcfs.hpp"

namespace gpuqos {

std::int64_t FrFcfsScheduler::pick(const std::deque<DramQueueEntry>& queue,
                                   const BankView& banks, Cycle now) {
  if (queue.empty()) return -1;
  // Every return path below requires a bank that can take a command at
  // `now`; while all banks are mid-activate the O(queue) scan is a no-op.
  if (!banks.any_ready(now)) return -1;

  // Starvation guard: once the oldest request exceeds the age cap it wins,
  // but only when its bank can actually take a command — otherwise other
  // banks keep working while its activate completes.
  const DramQueueEntry& oldest = queue.front();
  if (now - oldest.arrival > starvation_cap_ &&
      banks.bank_ready_at(oldest.bank) <= now) {
    return static_cast<std::int64_t>(oldest.id);
  }

  // First ready: the oldest row-buffer hit whose bank can take a CAS now.
  const DramQueueEntry* activate = nullptr;
  for (const auto& e : queue) {
    const bool ready = banks.bank_ready_at(e.bank) <= now;
    if (!ready) continue;
    if (banks.is_row_hit(e.bank, e.row)) {
      return static_cast<std::int64_t>(e.id);
    }
    if (activate == nullptr) activate = &e;  // oldest conflict on a free bank
  }
  // No issuable hit: open a row for the oldest actionable conflict.
  if (activate != nullptr) return static_cast<std::int64_t>(activate->id);
  return -1;  // every candidate bank is mid-activate
}

}  // namespace gpuqos
