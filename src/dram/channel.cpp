#include "dram/channel.hpp"

#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "check/context.hpp"
#include "check/digest.hpp"
#include "common/units.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace gpuqos {

Channel::Channel(Engine& engine, const DramConfig& cfg, unsigned index,
                 StatRegistry& stats)
    : engine_(engine),
      cfg_(cfg),
      timing_(ScaledTiming::from(cfg.timing, kDramClockDivider)),
      index_(index),
      stats_(stats),
      banks_(cfg.banks_per_channel) {
  st_row_hits_ = stats_.counter_ptr("dram.row_hits");
  st_row_misses_ = stats_.counter_ptr("dram.row_misses");
  st_bytes_[0][0] = stats_.counter_ptr("dram.read_bytes.cpu");
  st_bytes_[0][1] = stats_.counter_ptr("dram.read_bytes.gpu");
  st_bytes_[1][0] = stats_.counter_ptr("dram.write_bytes.cpu");
  st_bytes_[1][1] = stats_.counter_ptr("dram.write_bytes.gpu");
  st_reads_ = stats_.counter_ptr("dram.reads");
  st_writes_ = stats_.counter_ptr("dram.writes");
  st_read_lat_ = stats_.counter_ptr("dram.read_latency_sum");
  st_read_lat_src_[0] = stats_.counter_ptr("dram.read_latency_sum.cpu");
  st_read_lat_src_[1] = stats_.counter_ptr("dram.read_latency_sum.gpu");
  st_reads_src_[0] = stats_.counter_ptr("dram.reads.cpu");
  st_reads_src_[1] = stats_.counter_ptr("dram.reads.gpu");
  // Per-channel activity counters: unconditional, so the stats digest is
  // identical with and without observability attached.
  const std::string ch = "dram.ch" + std::to_string(index_) + ".";
  st_act_ = stats_.counter_ptr(ch + "act");
  st_pre_ = stats_.counter_ptr(ch + "pre");
  st_rd_ = stats_.counter_ptr(ch + "rd");
  st_wr_ = stats_.counter_ptr(ch + "wr");
}

void Channel::enqueue(DramQueueEntry entry) {
  entry.id = next_id_++;
  entry.arrival = engine_.now();
  if (check_ != nullptr) {
    check_->on_inject(entry.req.is_write ? CheckContext::Flow::DramWrite
                                         : CheckContext::Flow::DramRead);
  }
  if (entry.req.is_write) {
    writes_.push_back(std::move(entry));
  } else {
    if (sched_) sched_->on_enqueue(entry);
    reads_.push_back(std::move(entry));
  }
}

std::int64_t Channel::pick_write(Cycle now) const {
  // Both selectable cases (CAS, activate) need a ready bank; in drain mode
  // with every bank busy this skips a full-queue scan per DRAM cycle.
  if (!BankView(banks_).any_ready(now)) return -1;
  // Lane scan (dram/scheduler.hpp DramQueue): only bank/row words touched.
  std::ptrdiff_t act = -1;
  const std::size_t n = writes_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Bank& b = banks_[writes_.bank(i)];
    if (b.is_row_hit(writes_.row(i))) {
      if (b.ready(now)) {
        // An issuable row hit always wins; nothing later can override.
        return static_cast<std::int64_t>(writes_.id(i));
      }
    } else if (b.ready(now) && act < 0) {
      act = static_cast<std::ptrdiff_t>(i);
    }
  }
  return act >= 0 ? static_cast<std::int64_t>(
                        writes_.id(static_cast<std::size_t>(act)))
                  : -1;
}

void Channel::tick() {
  SampledProfScope<16> prof(prof_, ProfModule::Dram, prof_decim_);
  const Cycle now = engine_.now();

  if (!draining_writes_ && writes_.size() >= cfg_.write_drain_high) {
    draining_writes_ = true;
  }
  if (draining_writes_ && writes_.size() <= cfg_.write_drain_low) {
    draining_writes_ = false;
  }

  const bool serve_writes =
      !writes_.empty() && (draining_writes_ || reads_.empty());
  auto& q = serve_writes ? writes_ : reads_;
  std::int64_t id = -1;
  if (serve_writes) {
    id = pick_write(now);
  } else if (!reads_.empty() && sched_ != nullptr) {
    id = sched_->pick(reads_, BankView(banks_), now);
  }
  if (id < 0) return;

  // Ids are assigned in enqueue order and erases keep the order, so the id
  // lane stays sorted and index_of binary-searches.
  const std::ptrdiff_t idx = q.index_of(static_cast<std::uint64_t>(id));
  if (idx < 0) return;  // policy referenced a stale id
  const auto i = static_cast<std::size_t>(idx);
  Bank& bank = banks_[q.bank(i)];

  if (!bank.ready(now)) return;  // command slot busy (activate in flight)

  if (!bank.is_row_hit(q.row(i))) {
    // Bank-local precharge + activate; the request stays queued and other
    // banks keep streaming on the data bus meanwhile.
    ++*st_row_misses_;
    if (bank.row_open()) ++*st_pre_;  // implicit precharge before activate
    ++*st_act_;
    bank.begin_activate(q.row(i), now, timing_);
    return;
  }

  // Row hit and bank ready: issue the CAS unless the data bus is committed
  // too far ahead. The horizon (tCL + one burst) lets consecutive CAS
  // commands pipeline so bursts queue back-to-back on the bus while keeping
  // scheduling decisions reactive.
  if (bus_free_at_ > now + timing_.tCL + timing_.tBurst) return;
  ++*st_row_hits_;
  DramQueueEntry entry = q.take(i);
  if (!serve_writes && sched_ != nullptr) sched_->on_issue(entry);
  service_cas(std::move(entry), bank);
}

void Channel::service_cas(DramQueueEntry&& entry, Bank& bank) {
  const Cycle now = engine_.now();
  const bool write = entry.req.is_write;
  ++*(write ? st_wr_ : st_rd_);

  // Serialize data bursts on the channel bus.
  const Cycle earliest = std::max(now, bank.ready_at());
  const Cycle data_start =
      write ? std::max(earliest, bus_free_at_)
            : std::max(earliest + timing_.tCL, bus_free_at_);
  const Cycle cas_issue = write ? data_start : data_start - timing_.tCL;
  const Cycle done = bank.cas(write, cas_issue, timing_);
  bus_free_at_ = data_start + timing_.tBurst;

  const bool gpu = entry.req.source.is_gpu();
  if (telemetry_ != nullptr) {
    // Telemetry histograms are shared with the ring (which records at the
    // cycle barrier during a parallel tick), so route these through the
    // defer buffer too; outside the parallel phase this runs inline.
    const Cycle qlat =
        cas_issue >= entry.arrival ? cas_issue - entry.arrival : 0;
    const Cycle slat = done - cas_issue;
    Engine::defer_host([t = telemetry_, gpu, qlat, slat] {
      t->record_latency(LatStage::DramQueue, gpu, qlat);
      t->record_latency(LatStage::DramService, gpu, slat);
    });
  }
  *st_bytes_[write][gpu] += 64;
  if (!write) {
    *st_read_lat_ += done - entry.arrival;
    *st_read_lat_src_[gpu] += done - entry.arrival;
    ++*st_reads_src_[gpu];
    ++*st_reads_;
  } else {
    ++*st_writes_;
  }

  ++in_service_;
  GPUQOS_CHECK(done >= now, "CAS completion " << done
                                              << " scheduled in the past (now "
                                              << now << ")");
  engine_.schedule(done - now,
                   [this, write, cb = std::move(entry.req.on_complete)]() {
                     --in_service_;
                     if (check_ != nullptr) {
                       check_->on_retire(write ? CheckContext::Flow::DramWrite
                                               : CheckContext::Flow::DramRead,
                                         engine_.now());
                     }
                     if (cb) cb(engine_.now());
                   });
}

ChannelAuditView Channel::audit_view(std::size_t read_bound,
                                     std::size_t write_bound,
                                     Cycle starvation_bound) const {
  ChannelAuditView v;
  v.index = index_;
  v.read_depth = reads_.size();
  v.write_depth = writes_.size();
  v.read_bound = read_bound;
  v.write_bound = write_bound;
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    const Cycle a = reads_.arrival(i);
    if (v.oldest_read_arrival == kNoCycle || a < v.oldest_read_arrival)
      v.oldest_read_arrival = a;
  }
  v.now = engine_.now();
  v.starvation_bound = starvation_bound;
  return v;
}

std::uint64_t Channel::digest() const {
  Fnv1a64 h;
  for (const Bank& b : banks_) b.mix_into(h);
  for (const auto* q : {&reads_, &writes_}) {
    h.mix(q->size());
    for (std::size_t i = 0; i < q->size(); ++i) {
      const DramQueueEntry& e = (*q)[i];
      h.mix(e.req.addr);
      h.mix_bool(e.req.is_write);
      h.mix_bool(e.req.source.is_gpu());
      h.mix_byte(e.req.source.index);
      h.mix(e.arrival);
      h.mix(e.id);
      h.mix(e.bank);
      h.mix(e.row);
    }
  }
  h.mix(bus_free_at_);
  h.mix_bool(draining_writes_);
  h.mix(next_id_);
  h.mix(in_service_);
  return h.value();
}

void Channel::save(ckpt::StateWriter& w) const {
  if (!idle()) {
    throw ckpt::CkptError(
        "dram channel save() with requests in flight: the simulation was not "
        "drained before checkpointing");
  }
  w.u64(banks_.size());
  for (const Bank& b : banks_) b.save(w);
  w.u64(bus_free_at_);
  w.boolean(draining_writes_);
  w.u64(next_id_);
}

void Channel::load(ckpt::StateReader& r) {
  if (!idle()) r.fail("dram channel load() target has requests in flight");
  const std::uint64_t n = r.u64();
  if (n != banks_.size()) r.fail("bank count mismatch");
  for (Bank& b : banks_) b.load(r);
  bus_free_at_ = r.u64();
  draining_writes_ = r.boolean();
  next_id_ = r.u64();
}

}  // namespace gpuqos
