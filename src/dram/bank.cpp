#include "dram/bank.hpp"

#include <algorithm>

namespace gpuqos {

void Bank::begin_activate(std::uint64_t row, Cycle now,
                          const ScaledTiming& t) {
  Cycle act = std::max(now, ready_at_);
  if (row_open_) {
    // Precharge first; it may not cut tRAS short.
    act = std::max(act, activated_at_ + t.tRAS) + t.tRP;
  }
  activated_at_ = act;
  ready_at_ = act + t.tRCD;
  row_open_ = true;
  open_row_ = row;
}

Cycle Bank::cas(bool is_write, Cycle cas_issue, const ScaledTiming& t) {
  const Cycle data_done =
      cas_issue + (is_write ? t.tBurst + t.tWR : t.tCL + t.tBurst);
  ready_at_ = std::max(cas_issue + t.tCCD,
                       is_write ? cas_issue + t.tBurst + t.tWTR : cas_issue);
  return data_done;
}

}  // namespace gpuqos
