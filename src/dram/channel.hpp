// One DDR3 channel: banks, shared data bus, read queue (policy-scheduled) and
// write queue with watermark-based draining.
#pragma once

#include <cstdint>
#include <memory>

#include "check/auditors.hpp"
#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/stats.hpp"
#include "dram/bank.hpp"
#include "dram/scheduler.hpp"

namespace gpuqos {

class CheckContext;
class Profiler;
class Telemetry;

class Channel {
 public:
  Channel(Engine& engine, const DramConfig& cfg, unsigned index,
          StatRegistry& stats);

  /// Policy is owned by the controller (shared across channels is allowed for
  /// stateless policies; stateful ones get one instance per channel).
  void set_scheduler(IDramScheduler* sched) { sched_ = sched; }
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }
  void set_profiler(Profiler* prof) { prof_ = prof; }

  /// While attached, every enqueue/completion feeds the conservation ledger
  /// (Flow::DramRead / Flow::DramWrite: injected = retired exactly once).
  void set_check(CheckContext* check) { check_ = check; }

  /// Enqueue a request already mapped to this channel (bank/row decoded).
  void enqueue(DramQueueEntry entry);

  /// Advance one DRAM command cycle.
  void tick();

  [[nodiscard]] std::size_t read_queue_depth() const { return reads_.size(); }
  [[nodiscard]] std::size_t write_queue_depth() const { return writes_.size(); }
  [[nodiscard]] bool idle() const {
    return reads_.empty() && writes_.empty() && in_service_ == 0;
  }

  /// Snapshot for audit_channel. `read_bound` is typically the LLC MSHR pool
  /// feeding this controller; 0 disables a bound.
  [[nodiscard]] ChannelAuditView audit_view(std::size_t read_bound,
                                            std::size_t write_bound,
                                            Cycle starvation_bound) const;

  /// FNV-1a digest of queues, banks, bus reservation, and service state.
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint bank/bus state (docs/CHECKPOINT.md). Queued entries hold
  /// completion closures, so save() requires idle() — guaranteed by the
  /// barrier drain (the write queue drains once the read queue empties).
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  void service_cas(DramQueueEntry&& entry, Bank& bank);
  [[nodiscard]] std::int64_t pick_write(Cycle now) const;

  Engine& engine_;
  DramConfig cfg_;       // ckpt:skip digest:skip: construction parameter
  ScaledTiming timing_;  // ckpt:skip digest:skip: derived from cfg_
  unsigned index_;       // ckpt:skip digest:skip: construction identity
  StatRegistry& stats_;
  std::vector<Bank> banks_;
  DramQueue reads_;   // ckpt:skip: drained at the barrier
  DramQueue writes_;  // ckpt:skip: drained at the barrier
  IDramScheduler* sched_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  Profiler* prof_ = nullptr;
  // Sampled-profiling decimation counter (obs/profiler.hpp).
  std::uint32_t prof_decim_ = 0;  // ckpt:skip digest:skip: host-side only
  CheckContext* check_ = nullptr;
  Cycle bus_free_at_ = 0;
  bool draining_writes_ = false;
  std::uint64_t next_id_ = 0;
  std::uint64_t in_service_ = 0;  // ckpt:skip: zero at the barrier

  std::uint64_t* st_row_hits_ = nullptr;
  std::uint64_t* st_row_misses_ = nullptr;
  std::uint64_t* st_bytes_[2][2] = {};  // [write][gpu]
  std::uint64_t* st_reads_ = nullptr;
  std::uint64_t* st_writes_ = nullptr;
  std::uint64_t* st_read_lat_ = nullptr;
  std::uint64_t* st_read_lat_src_[2] = {};  // [gpu]
  std::uint64_t* st_reads_src_[2] = {};
  // Per-channel activity counters (obs/counters.hpp): DDR command mix for
  // the power proxy. Registered eagerly; bumped unconditionally.
  std::uint64_t* st_act_ = nullptr;   // "dram.ch<i>.act"
  std::uint64_t* st_pre_ = nullptr;   // "dram.ch<i>.pre"
  std::uint64_t* st_rd_ = nullptr;    // "dram.ch<i>.rd"
  std::uint64_t* st_wr_ = nullptr;    // "dram.ch<i>.wr"

  friend class DramController;
};

}  // namespace gpuqos
