// First-Ready, First-Come-First-Served scheduling (the paper's baseline),
// with an age cap that prevents row-hit streams from starving old requests.
#pragma once

#include "dram/scheduler.hpp"

namespace gpuqos {

class FrFcfsScheduler : public IDramScheduler {
 public:
  explicit FrFcfsScheduler(Cycle starvation_cap = 2000)
      : starvation_cap_(starvation_cap) {}

  [[nodiscard]] std::int64_t pick(const DramQueue& queue,
                                  const BankView& banks, Cycle now) override;

 private:
  Cycle starvation_cap_;
};

}  // namespace gpuqos
