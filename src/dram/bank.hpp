// Single DRAM bank state machine (request-level timing).
//
// Commands are split the way a real controller pipelines them: a row
// conflict/empty first gets a bank-local precharge+activate (the request
// stays queued, other banks keep streaming on the data bus); once the row is
// open and the bank ready, a CAS moves the data. This preserves bank-level
// parallelism, row-buffer locality, activate/precharge serialization, and
// read/write turnaround — the effects the paper's schedulers exploit.
#pragma once

#include <cstdint>

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace gpuqos {

/// DramTiming scaled to base cycles.
struct ScaledTiming {
  Cycle tCL, tRCD, tRP, tRAS, tWR, tBurst, tCCD, tRTP, tWTR;

  static ScaledTiming from(const DramTiming& t, unsigned divider) {
    return {t.tCL * divider,  t.tRCD * divider, t.tRP * divider,
            t.tRAS * divider, t.tWR * divider,  t.tBurst * divider,
            t.tCCD * divider, t.tRTP * divider, t.tWTR * divider};
  }
};

class Bank {
 public:
  [[nodiscard]] bool row_open() const { return row_open_; }
  [[nodiscard]] std::uint64_t open_row() const { return open_row_; }
  /// Earliest cycle the next command (CAS to the open row) may issue.
  [[nodiscard]] Cycle ready_at() const { return ready_at_; }

  [[nodiscard]] bool is_row_hit(std::uint64_t row) const {
    return row_open_ && open_row_ == row;
  }

  /// True when the bank can accept a command right now.
  [[nodiscard]] bool ready(Cycle now) const { return ready_at_ <= now; }

  /// Begin precharge (if a row is open) + activate for `row`. Bank-local:
  /// the data bus is untouched. After this, is_row_hit(row) is true and
  /// ready_at() is when a CAS may issue.
  void begin_activate(std::uint64_t row, Cycle now, const ScaledTiming& t);

  /// Issue a CAS for the open row (caller ensures is_row_hit && ready).
  /// `cas_issue` >= now may be bus-delayed by the channel. Returns the cycle
  /// the data burst completes (+ write recovery for writes).
  Cycle cas(bool is_write, Cycle cas_issue, const ScaledTiming& t);

  /// Testing support: a bank frozen in an arbitrary state. Scheduler unit
  /// tests need exact row/ready combinations (e.g. "open row, but not ready
  /// until cycle 1000") that the timed command path can't reach directly.
  [[nodiscard]] static Bank for_test(bool row_open, std::uint64_t open_row,
                                     Cycle ready_at) {
    Bank b;
    b.row_open_ = row_open;
    b.open_row_ = open_row;
    b.ready_at_ = ready_at;
    return b;
  }

  /// Checkpoint the full bank state (docs/CHECKPOINT.md).
  void save(ckpt::StateWriter& w) const {
    w.boolean(row_open_);
    w.u64(open_row_);
    w.u64(ready_at_);
    w.u64(activated_at_);
  }
  void load(ckpt::StateReader& r) {
    row_open_ = r.boolean();
    open_row_ = r.u64();
    ready_at_ = r.u64();
    activated_at_ = r.u64();
  }

  /// Fold the full bank state into a running determinism digest.
  void mix_into(Fnv1a64& h) const {
    h.mix_bool(row_open_);
    h.mix(open_row_);
    h.mix(ready_at_);
    h.mix(activated_at_);
  }

 private:
  bool row_open_ = false;
  std::uint64_t open_row_ = 0;
  Cycle ready_at_ = 0;
  Cycle activated_at_ = 0;  // for tRAS accounting
};

}  // namespace gpuqos
