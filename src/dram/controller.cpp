#include "dram/controller.hpp"

#include "check/check.hpp"
#include "check/digest.hpp"
#include "common/units.hpp"

namespace gpuqos {

DramController::DramController(Engine& engine, const DramConfig& cfg,
                               StatRegistry& stats,
                               const SchedulerFactory& factory)
    : cfg_(cfg), col_blocks_(cfg.row_bytes / 64) {
  GPUQOS_CHECK(cfg.channels > 0 && col_blocks_ > 0,
               "degenerate DRAM geometry: " << cfg.channels << " channels, "
                                            << col_blocks_
                                            << " blocks per row");
  for (unsigned c = 0; c < cfg.channels; ++c) {
    schedulers_.push_back(factory(c));
    channels_.push_back(std::make_unique<Channel>(engine, cfg, c, stats));
    channels_.back()->set_scheduler(schedulers_.back().get());
    Channel* ch = channels_.back().get();
    engine.add_ticker(Engine::TickDomain::Dram, kDramClockDivider,
                      /*phase=*/c % kDramClockDivider,
                      [ch](Cycle) { ch->tick(); });
  }
}

unsigned DramController::channel_of(Addr addr) const {
  return static_cast<unsigned>((addr / 64) % cfg_.channels);
}

unsigned DramController::bank_of(Addr addr) const {
  const std::uint64_t blk = addr / 64 / cfg_.channels;
  return static_cast<unsigned>((blk / col_blocks_) % cfg_.banks_per_channel);
}

std::uint64_t DramController::row_of(Addr addr) const {
  const std::uint64_t blk = addr / 64 / cfg_.channels;
  return blk / (col_blocks_ * cfg_.banks_per_channel);
}

void DramController::set_telemetry(Telemetry* telemetry) {
  for (auto& ch : channels_) ch->set_telemetry(telemetry);
}

void DramController::set_profiler(Profiler* prof) {
  for (auto& ch : channels_) ch->set_profiler(prof);
}

void DramController::set_check(CheckContext* check) {
  for (auto& ch : channels_) ch->set_check(check);
}

std::uint64_t DramController::digest() const {
  Fnv1a64 h;
  for (const auto& ch : channels_) h.mix(ch->digest());
  return h.value();
}

void DramController::save(ckpt::StateWriter& w) const {
  w.u64(channels_.size());
  for (const auto& ch : channels_) ch->save(w);
}

void DramController::load(ckpt::StateReader& r) {
  const std::uint64_t n = r.u64();
  if (n != channels_.size()) r.fail("channel count mismatch");
  for (auto& ch : channels_) ch->load(r);
}

void DramController::request(MemRequest&& req) {
  DramQueueEntry entry;
  entry.bank = bank_of(req.addr);
  entry.row = row_of(req.addr);
  const unsigned ch = channel_of(req.addr);
  entry.req = std::move(req);
  channels_[ch]->enqueue(std::move(entry));
}

bool DramController::idle() const {
  for (const auto& ch : channels_) {
    if (!ch->idle()) return false;
  }
  return true;
}

}  // namespace gpuqos
