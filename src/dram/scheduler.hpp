// DRAM scheduling policy interface.
//
// A channel exposes its read queue and bank state; the policy picks the entry
// to service next. All of the paper's scheduling baselines (FR-FCFS, SMS-p,
// DynPrio, FR-FCFS with boosted CPU priority) implement this interface, so
// they share the identical timing model.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/mem_request.hpp"
#include "common/types.hpp"
#include "dram/bank.hpp"

namespace gpuqos {

struct DramQueueEntry {
  MemRequest req;
  Cycle arrival = 0;
  std::uint64_t id = 0;  // stable identity across queue mutations
  unsigned bank = 0;
  std::uint64_t row = 0;
};

/// Read-only view of per-bank state a policy may consult. Concrete and
/// inline on purpose: schedulers probe every queue entry on every DRAM
/// cycle, and an abstract interface here costs two virtual dispatches per
/// probe on the hottest loop in the memory system. Tests build arbitrary
/// bank states with Bank::for_test.
class BankView {
 public:
  explicit BankView(const std::vector<Bank>& banks)
      : banks_(banks.data()), count_(banks.size()) {}
  [[nodiscard]] bool is_row_hit(unsigned bank, std::uint64_t row) const {
    return banks_[bank].is_row_hit(row);
  }
  [[nodiscard]] Cycle bank_ready_at(unsigned bank) const {
    return banks_[bank].ready_at();
  }
  /// True when at least one bank can accept a command at `now`. Lets a
  /// policy whose every return path requires a ready bank (FR-FCFS and its
  /// filtered variants) skip the O(queue) scan with an O(banks) probe while
  /// every bank is mid-activate. Policies with per-pick internal state (SMS
  /// batch timeouts) must NOT use this to skip work.
  [[nodiscard]] bool any_ready(Cycle now) const {
    for (std::size_t b = 0; b < count_; ++b) {
      if (banks_[b].ready_at() <= now) return true;
    }
    return false;
  }

 private:
  const Bank* banks_;
  std::size_t count_;
};

class IDramScheduler {
 public:
  virtual ~IDramScheduler() = default;

  /// Called when a request enters the read queue (lets batching policies
  /// maintain internal structures).
  virtual void on_enqueue(const DramQueueEntry& entry) { (void)entry; }

  /// Pick the queue entry to service next; return its `id`, or -1 to idle.
  /// The queue is ordered by arrival (front = oldest).
  [[nodiscard]] virtual std::int64_t pick(
      const std::deque<DramQueueEntry>& queue, const BankView& banks,
      Cycle now) = 0;

  /// Called when the chosen entry leaves the queue.
  virtual void on_issue(const DramQueueEntry& entry) { (void)entry; }

  /// Checkpoint hooks (docs/CHECKPOINT.md). Stateless policies (FR-FCFS and
  /// its filtered variants consult only the queue and QosSignals) keep the
  /// defaults; stateful ones (SMS: batching RNG + round-robin cursor)
  /// override all three. When has_ckpt_state() is false no section is
  /// written, which is what lets a warm snapshot taken under one policy be
  /// forked into a run under another.
  [[nodiscard]] virtual bool has_ckpt_state() const { return false; }
  virtual void save(ckpt::StateWriter& w) const { (void)w; }
  virtual void load(ckpt::StateReader& r) { (void)r; }
};

}  // namespace gpuqos
