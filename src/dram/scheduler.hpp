// DRAM scheduling policy interface.
//
// A channel exposes its read queue and bank state; the policy picks the entry
// to service next. All of the paper's scheduling baselines (FR-FCFS, SMS-p,
// DynPrio, FR-FCFS with boosted CPU priority) implement this interface, so
// they share the identical timing model.
#pragma once

#include <cstdint>
#include <deque>

#include "common/mem_request.hpp"
#include "common/types.hpp"
#include "dram/bank.hpp"

namespace gpuqos {

struct DramQueueEntry {
  MemRequest req;
  Cycle arrival = 0;
  std::uint64_t id = 0;  // stable identity across queue mutations
  unsigned bank = 0;
  std::uint64_t row = 0;
};

/// Read-only view of per-bank state a policy may consult.
class BankView {
 public:
  virtual ~BankView() = default;
  [[nodiscard]] virtual bool is_row_hit(unsigned bank,
                                        std::uint64_t row) const = 0;
  [[nodiscard]] virtual Cycle bank_ready_at(unsigned bank) const = 0;
};

class IDramScheduler {
 public:
  virtual ~IDramScheduler() = default;

  /// Called when a request enters the read queue (lets batching policies
  /// maintain internal structures).
  virtual void on_enqueue(const DramQueueEntry& entry) { (void)entry; }

  /// Pick the queue entry to service next; return its `id`, or -1 to idle.
  /// The queue is ordered by arrival (front = oldest).
  [[nodiscard]] virtual std::int64_t pick(
      const std::deque<DramQueueEntry>& queue, const BankView& banks,
      Cycle now) = 0;

  /// Called when the chosen entry leaves the queue.
  virtual void on_issue(const DramQueueEntry& entry) { (void)entry; }
};

}  // namespace gpuqos
