// DRAM scheduling policy interface.
//
// A channel exposes its read queue and bank state; the policy picks the entry
// to service next. All of the paper's scheduling baselines (FR-FCFS, SMS-p,
// DynPrio, FR-FCFS with boosted CPU priority) implement this interface, so
// they share the identical timing model.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mem_request.hpp"
#include "common/types.hpp"
#include "dram/bank.hpp"

namespace gpuqos {

struct DramQueueEntry {
  MemRequest req;
  Cycle arrival = 0;
  std::uint64_t id = 0;  // stable identity across queue mutations
  unsigned bank = 0;
  std::uint64_t row = 0;
};

/// Structure-of-arrays DRAM queue.
///
/// The full entries (request payload, completion closure) live in an AoS
/// vector; the five fields every scheduler probes per entry per DRAM cycle —
/// id, bank, row, arrival, source class — are mirrored into dense parallel
/// lanes so the FR-FCFS scan streams packed words instead of striding over
/// ~150-byte entries. Lanes are maintained by push_back()/take()/pop_front()
/// and stay ordered by arrival (index 0 = oldest), matching the deque the
/// schedulers historically consumed.
class DramQueue {
 public:
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  /// Full entry at index `i` (digest/audit walks; not the scan hot path).
  [[nodiscard]] const DramQueueEntry& operator[](std::size_t i) const {
    return entries_[i];
  }
  [[nodiscard]] const DramQueueEntry& front() const { return entries_.front(); }

  // Hot-lane accessors for scheduler pick loops.
  [[nodiscard]] std::uint64_t id(std::size_t i) const { return ids_[i]; }
  [[nodiscard]] unsigned bank(std::size_t i) const { return banks_[i]; }
  [[nodiscard]] std::uint64_t row(std::size_t i) const { return rows_[i]; }
  [[nodiscard]] Cycle arrival(std::size_t i) const { return arrivals_[i]; }
  [[nodiscard]] bool is_gpu(std::size_t i) const { return gpu_[i] != 0; }

  void push_back(DramQueueEntry&& e) {
    ids_.push_back(e.id);
    banks_.push_back(e.bank);
    rows_.push_back(e.row);
    arrivals_.push_back(e.arrival);
    gpu_.push_back(e.req.source.is_gpu() ? 1 : 0);
    entries_.push_back(std::move(e));
  }
  void push_back(const DramQueueEntry& e) { push_back(DramQueueEntry(e)); }

  /// Remove and return the entry at index `i`; later entries shift down, so
  /// both arrival order and id-sortedness (ids are assigned monotonically at
  /// enqueue) are preserved.
  DramQueueEntry take(std::size_t i) {
    DramQueueEntry out = std::move(entries_[i]);
    const auto at = static_cast<std::ptrdiff_t>(i);
    entries_.erase(entries_.begin() + at);
    ids_.erase(ids_.begin() + at);
    banks_.erase(banks_.begin() + at);
    rows_.erase(rows_.begin() + at);
    arrivals_.erase(arrivals_.begin() + at);
    gpu_.erase(gpu_.begin() + at);
    return out;
  }
  void pop_front() { (void)take(0); }
  /// Remove the entry with `id` if present.
  void erase_id(std::uint64_t id) {
    const std::ptrdiff_t i = index_of(id);
    if (i >= 0) (void)take(static_cast<std::size_t>(i));
  }

  /// Index of the entry with `id`, or -1. Ids are assigned in enqueue order
  /// and erases keep that order, so the id lane is normally sorted and the
  /// lookup binary-searches; a miss falls back to a linear scan so callers
  /// that build queues with arbitrary ids (tests) still resolve.
  [[nodiscard]] std::ptrdiff_t index_of(std::uint64_t id) const {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) return it - ids_.begin();
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] == id) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  }

 private:
  std::vector<DramQueueEntry> entries_;  // AoS payload (request + closure)
  // Lanes: per-field mirrors of entries_, same index space.
  std::vector<std::uint64_t> ids_;
  std::vector<unsigned> banks_;
  std::vector<std::uint64_t> rows_;
  std::vector<Cycle> arrivals_;
  std::vector<std::uint8_t> gpu_;
};

/// Read-only view of per-bank state a policy may consult. Concrete and
/// inline on purpose: schedulers probe every queue entry on every DRAM
/// cycle, and an abstract interface here costs two virtual dispatches per
/// probe on the hottest loop in the memory system. Tests build arbitrary
/// bank states with Bank::for_test.
class BankView {
 public:
  explicit BankView(const std::vector<Bank>& banks)
      : banks_(banks.data()), count_(banks.size()) {}
  [[nodiscard]] bool is_row_hit(unsigned bank, std::uint64_t row) const {
    return banks_[bank].is_row_hit(row);
  }
  [[nodiscard]] Cycle bank_ready_at(unsigned bank) const {
    return banks_[bank].ready_at();
  }
  /// True when at least one bank can accept a command at `now`. Lets a
  /// policy whose every return path requires a ready bank (FR-FCFS and its
  /// filtered variants) skip the O(queue) scan with an O(banks) probe while
  /// every bank is mid-activate. Policies with per-pick internal state (SMS
  /// batch timeouts) must NOT use this to skip work.
  [[nodiscard]] bool any_ready(Cycle now) const {
    for (std::size_t b = 0; b < count_; ++b) {
      if (banks_[b].ready_at() <= now) return true;
    }
    return false;
  }

 private:
  const Bank* banks_;
  std::size_t count_;
};

class IDramScheduler {
 public:
  virtual ~IDramScheduler() = default;

  /// Called when a request enters the read queue (lets batching policies
  /// maintain internal structures).
  virtual void on_enqueue(const DramQueueEntry& entry) { (void)entry; }

  /// Pick the queue entry to service next; return its `id`, or -1 to idle.
  /// The queue is ordered by arrival (index 0 = oldest).
  [[nodiscard]] virtual std::int64_t pick(const DramQueue& queue,
                                          const BankView& banks,
                                          Cycle now) = 0;

  /// Called when the chosen entry leaves the queue.
  virtual void on_issue(const DramQueueEntry& entry) { (void)entry; }

  /// Checkpoint hooks (docs/CHECKPOINT.md). Stateless policies (FR-FCFS and
  /// its filtered variants consult only the queue and QosSignals) keep the
  /// defaults; stateful ones (SMS: batching RNG + round-robin cursor)
  /// override all three. When has_ckpt_state() is false no section is
  /// written, which is what lets a warm snapshot taken under one policy be
  /// forked into a run under another.
  [[nodiscard]] virtual bool has_ckpt_state() const { return false; }
  virtual void save(ckpt::StateWriter& w) const { (void)w; }
  virtual void load(ckpt::StateReader& r) { (void)r; }
};

}  // namespace gpuqos
