#include "qos/frpu.hpp"

#include <algorithm>
#include <cmath>

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {

FrameRateEstimator::FrameRateEstimator(const QosConfig& cfg)
    : cfg_(cfg), table_(cfg.rtp_table_entries) {}

void FrameRateEstimator::on_frame_start(const SceneFrame& frame,
                                        Cycle gpu_now) {
  in_frame_ = true;
  frame_start_ = gpu_now;
  num_tiles_ = frame.num_tiles();
  px_per_tile_ = frame.pixels_per_tile();
  tile_updates_.assign(num_tiles_, 0);
  tiles_at_target_ = 0;
  rtps_completed_ = 0;
  rtp_start_ = gpu_now;
  rtp_updates_ = 0;
  rtp_accesses_ = 0;
  frame_updates_ = 0;
  frame_accesses_ = 0;
  cur_frame_rtp_cycles_ = 0;
  mid_frame_prediction_ = 0.0;
  if (phase_ == Phase::Learning) table_.clear();
}

void FrameRateEstimator::on_rt_update(unsigned tile, Cycle gpu_now) {
  if (!in_frame_ || tile >= num_tiles_) return;
  ++rtp_updates_;
  ++frame_updates_;
  const std::uint64_t target =
      static_cast<std::uint64_t>(rtps_completed_ + 1) * px_per_tile_;
  if (++tile_updates_[tile] == target) {
    if (++tiles_at_target_ == num_tiles_) complete_rtp(gpu_now);
  }
}

void FrameRateEstimator::on_llc_access(Cycle gpu_now) {
  (void)gpu_now;
  if (!in_frame_) return;
  ++rtp_accesses_;
  ++frame_accesses_;
}

void FrameRateEstimator::recount_tiles_at_target() {
  const std::uint64_t target =
      static_cast<std::uint64_t>(rtps_completed_ + 1) * px_per_tile_;
  tiles_at_target_ = 0;
  for (std::uint32_t u : tile_updates_) {
    if (u >= target) ++tiles_at_target_;
  }
}

void FrameRateEstimator::complete_rtp(Cycle gpu_now) {
  const Cycle rtp_cycles = gpu_now - rtp_start_;
  if (phase_ == Phase::Learning) {
    table_.record(rtp_updates_, rtp_cycles, num_tiles_, rtp_accesses_);
  }
  cur_frame_rtp_cycles_ += rtp_cycles;
  ++rtps_completed_;
  rtp_start_ = gpu_now;
  rtp_updates_ = 0;
  rtp_accesses_ = 0;
  recount_tiles_at_target();

  // Snapshot the prediction standing at (or just past) mid-frame for the
  // Fig. 8 accuracy measurement.
  if (phase_ == Phase::Prediction && mid_frame_prediction_ == 0.0 &&
      frame_progress() >= 0.5) {
    mid_frame_prediction_ = predicted_frame_cycles(gpu_now);
  }
}

double FrameRateEstimator::frame_progress() const {
  const std::uint32_t n = table_.rtp_count();
  if (n == 0) return 0.0;
  return std::min(1.0, static_cast<double>(rtps_completed_) /
                           static_cast<double>(n));
}

double FrameRateEstimator::predicted_frame_cycles(Cycle gpu_now) const {
  const std::uint32_t n_rtp = table_.rtp_count();
  if (phase_ != Phase::Prediction || n_rtp == 0) return 0.0;
  const double c_avg = table_.avg_cycles_per_rtp();
  const double lambda = frame_progress();
  // Average cycles per RTP observed in the current frame, extended with the
  // cycles accumulating in the in-flight RTP (Equation 2 uses completed-RTP
  // history; including the live RTP keeps the estimate responsive when
  // throttling slows rendering mid-frame).
  double c_inter = c_avg;
  if (rtps_completed_ > 0) {
    const Cycle elapsed = gpu_now - frame_start_;
    c_inter = static_cast<double>(elapsed) /
              static_cast<double>(rtps_completed_);
  }
  // Equation 3.
  return (lambda * c_inter + (1.0 - lambda) * c_avg) *
         static_cast<double>(n_rtp);
}

void FrameRateEstimator::on_frame_complete(Cycle gpu_now) {
  if (!in_frame_) return;
  // Fold a trailing partial RTP into the record (frames whose last pass does
  // not perfectly cover all tiles).
  if (rtp_updates_ > 0 &&
      rtp_updates_ >= px_per_tile_ * num_tiles_ / 2) {
    complete_rtp(gpu_now);
  }
  const double actual = static_cast<double>(gpu_now - frame_start_);

  if (phase_ == Phase::Learning) {
    if (table_.rtp_count() > 0) phase_ = Phase::Prediction;
  } else {
    ++frames_predicted_;
    if (mid_frame_prediction_ > 0.0) {
      samples_.push_back({mid_frame_prediction_, actual});
    }
    // Cross-verification (paper Fig. 4): observed totals vs. learned totals.
    const auto learned_updates =
        static_cast<double>(table_.total_updates());
    const auto learned_accesses =
        static_cast<double>(table_.total_llc_accesses());
    const double du =
        learned_updates > 0
            ? std::abs(static_cast<double>(frame_updates_) - learned_updates) /
                  learned_updates
            : 1.0;
    const double da =
        learned_accesses > 0
            ? std::abs(static_cast<double>(frame_accesses_) -
                       learned_accesses) /
                  learned_accesses
            : 0.0;
    // Cycle divergence matters too: under access throttling the learned
    // cycles/RTP go stale; relearning (with the current throttle held by the
    // governor) re-anchors C_avg so Equation 3 tracks the throttled regime
    // and the Figure-6 controller converges geometrically onto CT.
    const auto learned_cycles = static_cast<double>(table_.total_cycles());
    const double dc =
        cfg_.relearn_on_cycles && learned_cycles > 0
            ? std::abs(actual - learned_cycles) / learned_cycles
            : 0.0;
    if (du > cfg_.relearn_threshold || da > cfg_.relearn_threshold ||
        dc > cfg_.relearn_threshold) {
      phase_ = Phase::Learning;
      ++relearns_;
    }
  }
  in_frame_ = false;
}

FrpuAuditView FrameRateEstimator::check_view(Cycle gpu_now) const {
  FrpuAuditView v;
  v.in_frame = in_frame_;
  v.num_tiles = num_tiles_;
  v.tile_slots = tile_updates_.size();
  v.tiles_at_target = tiles_at_target_;
  v.predicted_cycles = predicting() ? predicted_frame_cycles(gpu_now) : 0.0;
  return v;
}

std::uint64_t FrameRateEstimator::digest() const {
  Fnv1a64 h;
  h.mix_bool(phase_ == Phase::Prediction);
  h.mix(table_.digest());
  h.mix_bool(in_frame_);
  h.mix(frame_start_);
  h.mix(num_tiles_);
  h.mix(px_per_tile_);
  for (std::uint32_t u : tile_updates_) h.mix(u);
  h.mix(tiles_at_target_);
  h.mix(rtps_completed_);
  h.mix(rtp_start_);
  h.mix(rtp_updates_);
  h.mix(rtp_accesses_);
  h.mix(frame_updates_);
  h.mix(frame_accesses_);
  h.mix(cur_frame_rtp_cycles_);
  h.mix_double(mid_frame_prediction_);
  h.mix(samples_.size());
  h.mix(relearns_);
  h.mix(frames_predicted_);
  return h.value();
}

void FrameRateEstimator::save(ckpt::StateWriter& w) const {
  w.boolean(phase_ == Phase::Prediction);
  table_.save(w);
  w.boolean(in_frame_);
  w.u64(frame_start_);
  w.u32(num_tiles_);
  w.u64(px_per_tile_);
  w.u64(tile_updates_.size());
  for (std::uint32_t u : tile_updates_) w.u32(u);
  w.u32(tiles_at_target_);
  w.u32(rtps_completed_);
  w.u64(rtp_start_);
  w.u32(rtp_updates_);
  w.u32(rtp_accesses_);
  w.u64(frame_updates_);
  w.u64(frame_accesses_);
  w.u64(cur_frame_rtp_cycles_);
  w.f64(mid_frame_prediction_);
  w.u64(samples_.size());
  for (const EstimationSample& s : samples_) {
    w.f64(s.predicted_cycles);
    w.f64(s.actual_cycles);
  }
  w.u64(relearns_);
  w.u64(frames_predicted_);
}

void FrameRateEstimator::load(ckpt::StateReader& r) {
  phase_ = r.boolean() ? Phase::Prediction : Phase::Learning;
  table_.load(r);
  in_frame_ = r.boolean();
  frame_start_ = r.u64();
  num_tiles_ = r.u32();
  px_per_tile_ = r.u64();
  tile_updates_.assign(r.u64(), 0);
  for (std::uint32_t& u : tile_updates_) u = r.u32();
  tiles_at_target_ = r.u32();
  rtps_completed_ = r.u32();
  rtp_start_ = r.u64();
  rtp_updates_ = r.u32();
  rtp_accesses_ = r.u32();
  frame_updates_ = r.u64();
  frame_accesses_ = r.u64();
  cur_frame_rtp_cycles_ = r.u64();
  mid_frame_prediction_ = r.f64();
  samples_.clear();
  const std::uint64_t n = r.u64();
  samples_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EstimationSample s;
    s.predicted_cycles = r.f64();
    s.actual_cycles = r.f64();
    samples_.push_back(s);
  }
  relearns_ = r.u64();
  frames_predicted_ = r.u64();
}

}  // namespace gpuqos
