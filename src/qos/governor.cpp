#include "qos/governor.hpp"

#include "ckpt/state_io.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace gpuqos {

QosGovernor::QosGovernor(Engine& engine, const QosConfig& cfg, Options opts,
                         FrameRateEstimator& frpu, AccessThrottler& atu,
                         GpuPipeline& pipeline, QosSignals& signals,
                         double fps_scale, StatRegistry& stats)
    : cfg_(cfg),
      opts_(opts),
      frpu_(frpu),
      atu_(atu),
      pipeline_(pipeline),
      signals_(signals),
      stats_(stats) {
  // GPU clock is 1 GHz; effective FPS = raw FPS / fps_scale, so the target
  // in GPU cycles per (simulated) frame is 1e9 / (target_fps * fps_scale).
  ct_ = 1.0e9 / (cfg.target_fps * fps_scale);
  signals_.target_fps = cfg.target_fps;
  st_controls_ = stats_.counter_ptr("qos.control_steps");
  st_throttle_on_ = stats_.counter_ptr("qos.control_steps_throttling");

  const Cycle period =
      static_cast<Cycle>(cfg.control_interval_gpu_cycles) * kGpuClockDivider;
  engine.add_ticker(period, /*phase=*/1, [this](Cycle now) {
    control(base_to_gpu_cycles(now));
  });
}

void QosGovernor::control(Cycle gpu_now) {
  ProfScope prof(prof_, ProfModule::Governor);
  ++*st_controls_;
  signals_.gpu_latency_tolerance = pipeline_.latency_tolerance();

  if (!frpu_.predicting()) {
    // Learning phase: hold the current throttle rate and priority signals so
    // the relearned cycles/RTP reflect the regime that will keep running
    // (the ablation flag reverts to releasing the throttle instead).
    if (!cfg_.hold_throttle_in_learning) {
      atu_.disable();
      signals_.cpu_prio_boost = false;
      signals_.gpu_meets_target = false;
    }
    signals_.estimating = false;
    signals_.gpu_urgent = false;
    if (telemetry_ != nullptr) record_control(gpu_now, 0.0);
    return;
  }

  const double cp = frpu_.predicted_frame_cycles(gpu_now);
  signals_.estimating = true;
  // Effective FPS: ct_ cycles/frame corresponds to exactly target_fps.
  signals_.predicted_fps = cp > 0 ? cfg_.target_fps * ct_ / cp : 0.0;
  signals_.gpu_meets_target = cp > 0 && cp <= ct_;
  signals_.frame_progress = frpu_.frame_progress();

  // DynPrio input: urgent when less than 10% of the predicted frame time is
  // left (Jeong et al., DAC 2012).
  const double elapsed = static_cast<double>(frpu_.frame_elapsed(gpu_now));
  signals_.gpu_urgent = cp > 0 && (cp - elapsed) < 0.1 * cp;

  if (opts_.enable_throttle) {
    atu_.update(cp, ct_, frpu_.learned_accesses_per_frame());
    if (atu_.throttling()) ++*st_throttle_on_;
  } else {
    atu_.disable();
  }
  // CPU priority needs headroom: only boost while the GPU is comfortably
  // ahead of the target (the paper leaves a 10 FPS cushion above 30 for the
  // same reason), so the GPU settles just above — not below — the target.
  signals_.cpu_prio_boost =
      opts_.enable_cpu_prio && cp > 0 && cp <= 0.9 * ct_;
  if (atu_.wg() != logged_wg_) {
    GPUQOS_LOG(Info, "ATU WG " << logged_wg_ << " -> " << atu_.wg()
                               << " (CP=" << cp << " CT=" << ct_ << " A="
                               << frpu_.learned_accesses_per_frame() << ")");
    logged_wg_ = atu_.wg();
  }
  if (signals_.cpu_prio_boost != logged_prio_) {
    GPUQOS_LOG(Info, "DRAM CPU priority "
                         << (signals_.cpu_prio_boost ? "on" : "off")
                         << " (CP=" << cp << " CT=" << ct_ << ")");
    logged_prio_ = signals_.cpu_prio_boost;
  }
  if (telemetry_ != nullptr) record_control(gpu_now, cp);
}

void QosGovernor::record_control(Cycle gpu_now, double cp) {
  QosControlRecord rec;
  rec.gpu_now = gpu_now;
  rec.predicting = frpu_.predicting();
  rec.cp = cp;
  rec.ct = ct_;
  rec.accesses = frpu_.learned_accesses_per_frame();
  rec.wg = atu_.wg();
  rec.ng = atu_.ng();
  rec.throttling = atu_.throttling();
  rec.cpu_prio_boost = signals_.cpu_prio_boost;
  telemetry_->on_qos_control(rec);
}

void QosGovernor::save(ckpt::StateWriter& w) const {
  w.u64(logged_wg_);
  w.boolean(logged_prio_);
  w.boolean(signals_.estimating);
  w.f64(signals_.predicted_fps);
  w.f64(signals_.target_fps);
  w.boolean(signals_.gpu_meets_target);
  w.boolean(signals_.cpu_prio_boost);
  w.f64(signals_.frame_progress);
  w.boolean(signals_.gpu_urgent);
  w.f64(signals_.gpu_latency_tolerance);
}

void QosGovernor::load(ckpt::StateReader& r) {
  logged_wg_ = r.u64();
  logged_prio_ = r.boolean();
  signals_.estimating = r.boolean();
  signals_.predicted_fps = r.f64();
  signals_.target_fps = r.f64();
  signals_.gpu_meets_target = r.boolean();
  signals_.cpu_prio_boost = r.boolean();
  signals_.frame_progress = r.f64();
  signals_.gpu_urgent = r.boolean();
  signals_.gpu_latency_tolerance = r.f64();
}

}  // namespace gpuqos
