#include "qos/rtp_table.hpp"

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {

void RtpTable::clear() {
  for (auto& e : entries_) e = RtpEntry{};
  used_ = 0;
  rtp_count_ = 0;
  total_cycles_ = 0;
  total_updates_ = 0;
  total_accesses_ = 0;
}

void RtpTable::record(std::uint32_t updates, Cycle cycles, std::uint32_t rtts,
                      std::uint32_t llc_accesses) {
  const unsigned idx =
      used_ < entries_.size() ? used_ : static_cast<unsigned>(entries_.size()) - 1;
  RtpEntry& e = entries_[idx];
  e.valid = true;
  e.updates += updates;
  // The paper's table stores four 4-byte fields per entry; a per-plane cycle
  // delta is a few thousand GPU cycles, far inside u32.
  e.cycles += static_cast<std::uint32_t>(cycles);  /*narrow:ok*/
  e.rtts += rtts;
  e.llc_accesses += llc_accesses;
  if (used_ < entries_.size()) ++used_;
  ++rtp_count_;
  total_cycles_ += cycles;
  total_updates_ += updates;
  total_accesses_ += llc_accesses;
}

double RtpTable::avg_cycles_per_rtp() const {
  if (rtp_count_ == 0) return 0.0;
  return static_cast<double>(total_cycles_) / static_cast<double>(rtp_count_);
}

RtpAuditView RtpTable::check_view() const {
  RtpAuditView v;
  v.used = used_;
  v.capacity = capacity();
  v.rtp_count = rtp_count_;
  v.avg_cycles_per_rtp = avg_cycles_per_rtp();
  v.total_updates = total_updates_;
  return v;
}

std::uint64_t RtpTable::digest() const {
  Fnv1a64 h;
  for (const RtpEntry& e : entries_) {
    h.mix_bool(e.valid);
    h.mix(e.updates);
    h.mix(e.cycles);
    h.mix(e.rtts);
    h.mix(e.llc_accesses);
  }
  h.mix(used_);
  h.mix(rtp_count_);
  h.mix(total_cycles_);
  h.mix(total_updates_);
  h.mix(total_accesses_);
  return h.value();
}

void RtpTable::save(ckpt::StateWriter& w) const {
  w.u64(entries_.size());
  for (const RtpEntry& e : entries_) {
    w.boolean(e.valid);
    w.u32(e.updates);
    w.u32(e.cycles);
    w.u32(e.rtts);
    w.u32(e.llc_accesses);
  }
  w.u32(used_);
  w.u32(rtp_count_);
  w.u64(total_cycles_);
  w.u64(total_updates_);
  w.u64(total_accesses_);
}

void RtpTable::load(ckpt::StateReader& r) {
  if (const std::uint64_t n = r.u64(); n != entries_.size()) {
    r.fail("RTP table capacity mismatch (snapshot has " + std::to_string(n) +
           " entries, live table has " + std::to_string(entries_.size()) +
           ")");
  }
  for (RtpEntry& e : entries_) {
    e.valid = r.boolean();
    e.updates = r.u32();
    e.cycles = r.u32();
    e.rtts = r.u32();
    e.llc_accesses = r.u32();
  }
  used_ = r.u32();
  rtp_count_ = r.u32();
  total_cycles_ = r.u64();
  total_updates_ = r.u64();
  total_accesses_ = r.u64();
}

}  // namespace gpuqos
