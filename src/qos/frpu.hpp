// Frame Rate Prediction Unit (paper Section III-A).
//
// Observes render-target updates, LLC accesses, and frame boundaries from
// the pipeline (via FrameObserver) and alternates between a *learning* phase
// (one full frame recorded into the RTP table) and a *prediction* phase
// (Equations 1-3). Observed data is cross-verified against the learned data;
// divergence beyond a threshold discards the table and relearns (Figure 4).
//
// RTP boundary detection: an RTP is "a batch of updates that covers all
// tiles of the render target", so RTP k completes when every tile has
// received at least k * (pixels per tile) updates.
#pragma once

#include <cstdint>
#include <vector>

#include "check/auditors.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "gpu/scene.hpp"
#include "qos/rtp_table.hpp"

namespace gpuqos {

class FrameRateEstimator : public FrameObserver {
 public:
  enum class Phase { Learning, Prediction };

  struct EstimationSample {
    double predicted_cycles = 0;  // prediction standing at mid-frame
    double actual_cycles = 0;
  };

  explicit FrameRateEstimator(const QosConfig& cfg);

  // FrameObserver
  void on_frame_start(const SceneFrame& frame, Cycle gpu_now) override;
  void on_rt_update(unsigned tile, Cycle gpu_now) override;
  void on_llc_access(Cycle gpu_now) override;
  void on_frame_complete(Cycle gpu_now) override;

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] bool predicting() const { return phase_ == Phase::Prediction; }

  /// Equation 3: predicted cycles for the frame currently being rendered.
  /// Only meaningful while predicting; returns 0 otherwise.
  [[nodiscard]] double predicted_frame_cycles(Cycle gpu_now) const;

  /// Fraction of the current frame rendered (lambda of Equation 2).
  [[nodiscard]] double frame_progress() const;

  /// GPU cycles spent in the current frame so far.
  [[nodiscard]] Cycle frame_elapsed(Cycle gpu_now) const {
    return in_frame_ ? gpu_now - frame_start_ : 0;
  }

  /// The `A` input of the throttling algorithm: learned LLC accesses/frame.
  [[nodiscard]] std::uint64_t learned_accesses_per_frame() const {
    return table_.total_llc_accesses();
  }

  [[nodiscard]] const RtpTable& table() const { return table_; }

  /// One sample per frame completed in the prediction phase (Fig. 8 data).
  [[nodiscard]] const std::vector<EstimationSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint64_t relearn_events() const { return relearns_; }
  [[nodiscard]] std::uint64_t frames_predicted() const {
    return frames_predicted_;
  }

  /// Snapshot for audit_frpu (tile bookkeeping, Eq. 3 output).
  [[nodiscard]] FrpuAuditView check_view(Cycle gpu_now) const;

  /// FNV-1a digest of the estimator state, including the RTP table.
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint the estimator, its RTP table, and the Fig.-8 sample log
  /// (docs/CHECKPOINT.md).
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  void complete_rtp(Cycle gpu_now);
  void recount_tiles_at_target();

  QosConfig cfg_;  // ckpt:skip digest:skip: construction parameter
  Phase phase_ = Phase::Learning;
  RtpTable table_;

  // Current-frame tracking.
  bool in_frame_ = false;
  Cycle frame_start_ = 0;
  unsigned num_tiles_ = 0;
  std::uint64_t px_per_tile_ = 0;
  std::vector<std::uint32_t> tile_updates_;
  unsigned tiles_at_target_ = 0;
  std::uint32_t rtps_completed_ = 0;
  Cycle rtp_start_ = 0;
  std::uint32_t rtp_updates_ = 0;
  std::uint32_t rtp_accesses_ = 0;
  std::uint64_t frame_updates_ = 0;
  std::uint64_t frame_accesses_ = 0;
  std::uint64_t cur_frame_rtp_cycles_ = 0;  // cycles in completed RTPs

  // Prediction bookkeeping.
  double mid_frame_prediction_ = 0.0;
  std::vector<EstimationSample> samples_;
  std::uint64_t relearns_ = 0;
  std::uint64_t frames_predicted_ = 0;
};

}  // namespace gpuqos
