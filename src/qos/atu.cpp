#include "qos/atu.hpp"

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {

AccessThrottler::AccessThrottler(const QosConfig& cfg)
    : cfg_(cfg), ng_(cfg.ng_init), tokens_left_(cfg.ng_init) {}

void AccessThrottler::update(double cp, double ct,
                             std::uint64_t accesses_per_frame) {
  ng_ = cfg_.ng_init;
  if (cp > ct) {
    // GPU is at or below the target frame rate: give it full bandwidth.
    wg_ = 0;
    blocked_until_ = 0;
    return;
  }
  if (accesses_per_frame == 0) return;
  const double bound = (ct - cp) / static_cast<double>(accesses_per_frame);
  if (static_cast<double>(wg_) < bound) wg_ += cfg_.wg_step;
}

void AccessThrottler::disable() {
  wg_ = 0;
  blocked_until_ = 0;
  tokens_left_ = ng_;
}

bool AccessThrottler::allow(Cycle gpu_now) {
  if (wg_ == 0) {
    ++grants_;
    return true;
  }
  if (gpu_now < blocked_until_) return false;
  if (tokens_left_ == 0) tokens_left_ = ng_;  // blocked window elapsed
  ++grants_;
  return true;
}

void AccessThrottler::on_issued(Cycle gpu_now) {
  ++issues_;
  if (wg_ == 0) return;
  if (tokens_left_ > 0) --tokens_left_;
  if (tokens_left_ == 0) {
    // Arming a new disabled window while the previous one is still running
    // would double-charge the GPU; the auditor flags any occurrence.
    if (blocked_until_ > gpu_now) ++window_overlaps_;
    blocked_until_ = gpu_now + wg_;
  }
}

AtuAuditView AccessThrottler::check_view() const {
  AtuAuditView v;
  v.ng = ng_;
  v.wg = wg_;
  v.tokens_left = tokens_left_;
  v.blocked_until = blocked_until_;
  v.grants = grants_;
  v.issues = issues_;
  v.window_overlaps = window_overlaps_;
  return v;
}

std::uint64_t AccessThrottler::digest() const {
  Fnv1a64 h;
  h.mix(ng_);
  h.mix(wg_);
  h.mix(tokens_left_);
  h.mix(blocked_until_);
  h.mix(grants_);
  h.mix(issues_);
  h.mix(window_overlaps_);
  return h.value();
}

void AccessThrottler::save(ckpt::StateWriter& w) const {
  w.u32(ng_);
  w.u64(wg_);
  w.u32(tokens_left_);
  w.u64(blocked_until_);
  w.u64(grants_);
  w.u64(issues_);
  w.u64(window_overlaps_);
}

void AccessThrottler::load(ckpt::StateReader& r) {
  ng_ = r.u32();
  wg_ = r.u64();
  tokens_left_ = r.u32();
  blocked_until_ = r.u64();
  grants_ = r.u64();
  issues_ = r.u64();
  window_overlaps_ = r.u64();
}

}  // namespace gpuqos
