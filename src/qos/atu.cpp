#include "qos/atu.hpp"

namespace gpuqos {

AccessThrottler::AccessThrottler(const QosConfig& cfg)
    : cfg_(cfg), ng_(cfg.ng_init), tokens_left_(cfg.ng_init) {}

void AccessThrottler::update(double cp, double ct,
                             std::uint64_t accesses_per_frame) {
  ng_ = cfg_.ng_init;
  if (cp > ct) {
    // GPU is at or below the target frame rate: give it full bandwidth.
    wg_ = 0;
    blocked_until_ = 0;
    return;
  }
  if (accesses_per_frame == 0) return;
  const double bound = (ct - cp) / static_cast<double>(accesses_per_frame);
  if (static_cast<double>(wg_) < bound) wg_ += cfg_.wg_step;
}

void AccessThrottler::disable() {
  wg_ = 0;
  blocked_until_ = 0;
  tokens_left_ = ng_;
}

bool AccessThrottler::allow(Cycle gpu_now) {
  if (wg_ == 0) return true;
  if (gpu_now < blocked_until_) return false;
  if (tokens_left_ == 0) tokens_left_ = ng_;  // blocked window elapsed
  return true;
}

void AccessThrottler::on_issued(Cycle gpu_now) {
  if (wg_ == 0) return;
  if (tokens_left_ > 0) --tokens_left_;
  if (tokens_left_ == 0) blocked_until_ = gpu_now + wg_;
}

}  // namespace gpuqos
