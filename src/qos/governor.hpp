// QoS governor: wires the frame-rate estimator to the access throttler and
// publishes QosSignals for the DRAM schedulers (Section III's three steps).
//
// Every control interval it (1) reads the predicted cycles/frame CP from the
// FRPU, (2) runs the Figure-6 controller with CP, the target CT, and the
// learned accesses/frame A, and (3) raises the CPU-priority signal for the
// DRAM scheduler when the GPU meets the target. When the estimator is in the
// learning phase, everything reverts to baseline behaviour.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/qos_signals.hpp"
#include "common/stats.hpp"
#include "gpu/pipeline.hpp"
#include "qos/atu.hpp"
#include "qos/frpu.hpp"

namespace gpuqos {

class Profiler;
class Telemetry;

class QosGovernor {
 public:
  struct Options {
    bool enable_throttle = true;   // step 2 (ATU)
    bool enable_cpu_prio = true;   // step 3 (DRAM scheduler boost)
  };

  /// `fps_scale` converts simulated frame rate to effective (paper-scale)
  /// FPS; see SimConfig::fps_scale.
  QosGovernor(Engine& engine, const QosConfig& cfg, Options opts,
              FrameRateEstimator& frpu, AccessThrottler& atu,
              GpuPipeline& pipeline, QosSignals& signals, double fps_scale,
              StatRegistry& stats);

  /// Control step; registered as an engine ticker, callable from tests.
  void control(Cycle gpu_now);

  /// Journal every control step's Fig.-6 inputs/outputs (WG transitions,
  /// CPU-priority flips, throttle-window spans) into the telemetry layer.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }
  void set_profiler(Profiler* prof) { prof_ = prof; }

  /// Target cycles per frame CT in GPU-clock cycles.
  [[nodiscard]] double target_frame_cycles() const { return ct_; }

  /// Checkpoint the governor's log-edge state plus the shared QosSignals it
  /// owns the writes to (docs/CHECKPOINT.md). CT is derived from config and
  /// not persisted.
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  void record_control(Cycle gpu_now, double cp);

  QosConfig cfg_;  // ckpt:skip: construction parameter
  Options opts_;   // ckpt:skip: construction parameter
  FrameRateEstimator& frpu_;
  AccessThrottler& atu_;
  GpuPipeline& pipeline_;
  QosSignals& signals_;
  double ct_;  // ckpt:skip: CT (target frame cycles), fixed at construction
  StatRegistry& stats_;
  Telemetry* telemetry_ = nullptr;
  Profiler* prof_ = nullptr;
  Cycle logged_wg_ = 0;       // last WG / priority reported via GPUQOS_LOG
  bool logged_prio_ = false;
  std::uint64_t* st_controls_ = nullptr;
  std::uint64_t* st_throttle_on_ = nullptr;
};

}  // namespace gpuqos
