// Access Throttling Unit (paper Section III-B, Figures 6-7).
//
// Token mechanism: the GPU may issue NG LLC accesses, then its LLC ports are
// disabled for WG GPU cycles. The controller (Figure 6) adapts WG from the
// predicted cycles/frame CP, the target cycles/frame CT, and the learned LLC
// accesses per frame A:
//     if CP > CT:            NG = 1, WG = 0          (GPU too slow: no throttle)
//     else if WG < (CT-CP)/A: WG += 2                (tighten gradually)
#pragma once

#include <cstdint>

#include "check/auditors.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "gpu/memiface.hpp"

namespace gpuqos {

class AccessThrottler : public AccessGate {
 public:
  explicit AccessThrottler(const QosConfig& cfg);

  /// Figure 6 controller step. Inputs in GPU cycles / accesses per frame.
  void update(double cp, double ct, std::uint64_t accesses_per_frame);

  /// Stop throttling entirely (estimator fell back to the learning phase).
  void disable();

  // AccessGate
  [[nodiscard]] bool allow(Cycle gpu_now) override;
  void on_issued(Cycle gpu_now) override;

  [[nodiscard]] Cycle wg() const { return wg_; }
  [[nodiscard]] unsigned ng() const { return ng_; }
  [[nodiscard]] bool throttling() const { return wg_ > 0; }

  /// Snapshot for audit_atu: token accounting plus the grant/issue tallies
  /// that prove the GMI never bypasses the gate.
  [[nodiscard]] AtuAuditView check_view() const;

  /// FNV-1a digest of the throttle state (NG, WG, tokens, window).
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint the token mechanism and grant/issue tallies
  /// (docs/CHECKPOINT.md).
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  QosConfig cfg_;  // ckpt:skip digest:skip: construction parameter
  unsigned ng_;
  Cycle wg_ = 0;
  unsigned tokens_left_;
  Cycle blocked_until_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t issues_ = 0;
  std::uint64_t window_overlaps_ = 0;
};

}  // namespace gpuqos
