// The RTP information table (paper Section III-A1): 64 entries, each holding
// four 4-byte fields for one render-target plane of the learned frame —
// (i) updates, (ii) cycles, (iii) RTT count, (iv) shared-LLC accesses.
// When a frame has more RTPs than entries, the last entry accumulates the
// remainder, exactly as the paper specifies.
#pragma once

#include <cstdint>
#include <vector>

#include "check/auditors.hpp"
#include "check/check.hpp"
#include "common/types.hpp"

namespace gpuqos {

namespace ckpt {
class StateWriter;
class StateReader;
}  // namespace ckpt

struct RtpEntry {
  bool valid = false;
  std::uint32_t updates = 0;
  std::uint32_t cycles = 0;
  std::uint32_t rtts = 0;
  std::uint32_t llc_accesses = 0;
};

class RtpTable {
 public:
  explicit RtpTable(unsigned entries = 64) : entries_(entries) {}

  void clear();

  /// Record a completed RTP. Past `capacity`, accumulates into the last entry.
  void record(std::uint32_t updates, Cycle cycles, std::uint32_t rtts,
              std::uint32_t llc_accesses);

  [[nodiscard]] unsigned size() const { return used_; }
  [[nodiscard]] unsigned capacity() const {
    return checked_narrow<unsigned>(entries_.size());
  }
  [[nodiscard]] const RtpEntry& entry(unsigned i) const { return entries_[i]; }

  /// Number of RTPs recorded, counting overflow RTPs folded into the last
  /// entry individually (N_rtp of Equation 1).
  [[nodiscard]] std::uint32_t rtp_count() const { return rtp_count_; }
  /// Average cycles per RTP over the learned frame (C^i_avg of Equation 2).
  [[nodiscard]] double avg_cycles_per_rtp() const;
  [[nodiscard]] std::uint64_t total_cycles() const { return total_cycles_; }
  [[nodiscard]] std::uint64_t total_updates() const { return total_updates_; }
  /// LLC accesses per frame (the `A` input of the throttling algorithm).
  [[nodiscard]] std::uint64_t total_llc_accesses() const {
    return total_accesses_;
  }

  /// Paper Section III-D: 64 entries x 4 fields x 4 bytes (+ valid bits).
  [[nodiscard]] std::size_t storage_bytes() const {
    return entries_.size() * (4 * 4) + (entries_.size() + 7) / 8;
  }

  /// Snapshot for audit_rtp (entry bounds, Eq. 1-2 inputs).
  [[nodiscard]] RtpAuditView check_view() const;

  /// FNV-1a digest of every entry and accumulator.
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint every entry and accumulator (docs/CHECKPOINT.md).
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  std::vector<RtpEntry> entries_;
  unsigned used_ = 0;
  std::uint32_t rtp_count_ = 0;
  std::uint64_t total_cycles_ = 0;
  std::uint64_t total_updates_ = 0;
  std::uint64_t total_accesses_ = 0;
};

}  // namespace gpuqos
