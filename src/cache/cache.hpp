// Functional set-associative cache with pluggable replacement.
//
// Used directly (with latency folded in by the owner) for every private
// cache — CPU L1/L2 and the GPU-internal texture/depth/color/vertex/hiZ
// caches — and as the tag store inside the timed shared LLC.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace gpuqos {

/// Result of a fill/allocation: the block that was evicted to make room.
struct Eviction {
  Addr block_addr = 0;
  bool dirty = false;
  SourceId owner = SourceId::cpu(0);
  GpuAccessClass gclass = GpuAccessClass::None;
};

struct LookupResult {
  bool hit = false;
};

class SetAssocCache {
 public:
  SetAssocCache(const CacheConfig& cfg, std::string name = "cache");

  /// Hit path: updates replacement state; marks dirty when `write`.
  [[nodiscard]] bool lookup(Addr addr, bool write);

  /// Probe without touching replacement/dirty state.
  [[nodiscard]] bool probe(Addr addr) const;

  /// Install a block (after a miss was serviced, or on a write-allocate).
  /// Returns the victim if one was displaced.
  std::optional<Eviction> fill(Addr addr, SourceId owner, GpuAccessClass gclass,
                               bool dirty);

  /// Remove a block if present; returns it (for dirty writeback propagation).
  std::optional<Eviction> invalidate(Addr addr);

  /// Collect the addresses of all dirty blocks and clear their dirty bits
  /// (blocks stay valid). Used for end-of-frame render-target flushes.
  [[nodiscard]] std::vector<Addr> drain_dirty();

  /// Combined access used by the simple private caches: lookup, and on a miss
  /// allocate immediately. `hit` reports the lookup outcome; the returned
  /// eviction (if any) must be written back by the owner when dirty.
  std::optional<Eviction> access(Addr addr, bool write, SourceId owner,
                                 GpuAccessClass gclass, bool& hit);

  [[nodiscard]] Addr block_base(Addr addr) const {
    return addr & ~static_cast<Addr>(cfg_.block_bytes - 1);
  }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of valid blocks currently owned by the GPU (occupancy stats).
  [[nodiscard]] std::uint64_t gpu_blocks() const { return gpu_blocks_; }
  [[nodiscard]] std::uint64_t valid_blocks() const { return valid_blocks_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  void reset_counters() { hits_ = misses_ = 0; }

  /// Tag/state consistency scan (src/check auditors): duplicate valid tags
  /// within a set, or occupancy counters that disagree with a recount.
  /// Returns a description of the first inconsistency, or nullopt when clean.
  [[nodiscard]] std::optional<std::string> consistency_error() const;

  /// FNV-1a digest of the full tag-store state (determinism auditing).
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint the tag store, replacement state, and counters into the
  /// current section; load() targets a freshly-constructed cache with the
  /// same configuration (docs/CHECKPOINT.md).
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  struct Block {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    SourceId owner = SourceId::cpu(0);
    GpuAccessClass gclass = GpuAccessClass::None;
  };

  [[nodiscard]] std::uint64_t set_of(Addr addr) const;
  [[nodiscard]] Addr tag_of(Addr addr) const;
  [[nodiscard]] int find_way(std::uint64_t set, Addr tag) const;

  [[nodiscard]] Addr block_addr_of(Addr tag, std::uint64_t set) const {
    return ((tag << set_bits_) | set) << block_shift_;
  }

  CacheConfig cfg_;     // ckpt:skip: construction parameter
  std::string name_;    // ckpt:skip digest:skip: diagnostic label only
  std::uint64_t sets_;  // ckpt:skip: geometry, derived from cfg_
  // block_bytes and sets_ are verified powers of two in the constructor, so
  // the per-access set/tag extraction is pure shift/mask (set_of and tag_of
  // are on the LLC lookup path, several per simulated cycle).
  std::uint32_t block_shift_ = 0;  // ckpt:skip digest:skip: derived from cfg_
  std::uint32_t set_bits_ = 0;     // ckpt:skip digest:skip: derived from cfg_
  std::vector<Block> blocks_;  // sets_ * ways
  // SoA hot-lane mirror of blocks_: one packed (tag << 1) | valid word per
  // way, so find_way/fill scan a dense 8-byte lane instead of striding over
  // 24-byte Blocks. Maintained by every tag/valid mutation, rebuilt by
  // load(), and cross-checked against blocks_ by consistency_error().
  std::vector<Addr> way_tags_;  // ckpt:skip digest:skip: derived from blocks_
  std::unique_ptr<ReplacementPolicy> policy_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // Occupancy tallies derived from blocks_; excluded from the digest since
  // every update is cross-checked against blocks_ by consistency_error().
  std::uint64_t gpu_blocks_ = 0;    // digest:skip: derived from blocks_
  std::uint64_t valid_blocks_ = 0;  // digest:skip: derived from blocks_
};

}  // namespace gpuqos
