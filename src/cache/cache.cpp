#include "cache/cache.hpp"

#include <bit>
#include <sstream>
#include <utility>

#include "check/check.hpp"
#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {

SetAssocCache::SetAssocCache(const CacheConfig& cfg, std::string name)
    : cfg_(cfg),
      name_(std::move(name)),
      sets_(cfg.sets()),
      blocks_(sets_ * cfg.ways),
      way_tags_(sets_ * cfg.ways, 0),
      policy_(make_policy(cfg.srrip, sets_, cfg.ways)) {
  GPUQOS_CHECK(sets_ > 0 && std::has_single_bit(sets_),
               name_ << ": set count " << sets_ << " must be a power of two");
  GPUQOS_CHECK(std::has_single_bit(static_cast<std::uint64_t>(cfg.block_bytes)),
               name_ << ": block size " << cfg.block_bytes
                     << " must be a power of two");
  block_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(cfg.block_bytes)));
  set_bits_ = static_cast<std::uint32_t>(std::countr_zero(sets_));
}

std::uint64_t SetAssocCache::set_of(Addr addr) const {
  return (addr >> block_shift_) & (sets_ - 1);
}

Addr SetAssocCache::tag_of(Addr addr) const {
  return addr >> (block_shift_ + set_bits_);
}

int SetAssocCache::find_way(std::uint64_t set, Addr tag) const {
  // Scan the packed (tag << 1) | valid lane: one dense 8-byte word per way.
  const Addr key = (tag << 1) | 1;
  const Addr* row = &way_tags_[set * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (row[w] == key) return static_cast<int>(w);
  }
  return -1;
}

bool SetAssocCache::lookup(Addr addr, bool write) {
  const std::uint64_t set = set_of(addr);
  const int way = find_way(set, tag_of(addr));
  if (way < 0) {
    ++misses_;
    return false;
  }
  ++hits_;
  policy_->on_hit(set, static_cast<unsigned>(way));
  if (write) blocks_[set * cfg_.ways + way].dirty = true;
  return true;
}

bool SetAssocCache::probe(Addr addr) const {
  return find_way(set_of(addr), tag_of(addr)) >= 0;
}

std::optional<Eviction> SetAssocCache::fill(Addr addr, SourceId owner,
                                            GpuAccessClass gclass, bool dirty) {
  const std::uint64_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  Block* row = &blocks_[set * cfg_.ways];
  Addr* tag_row = &way_tags_[set * cfg_.ways];

  // One pass over the packed lane finds both a matching way (refill of a
  // block already present, e.g. a racing write-allocate: merge) and the
  // first invalid way.
  const Addr key = (tag << 1) | 1;
  int hit_way = -1;
  int way = -1;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    const Addr e = tag_row[w];
    if ((e & 1) != 0) {
      if (e == key) {
        hit_way = static_cast<int>(w);
        break;
      }
    } else if (way < 0) {
      way = static_cast<int>(w);
    }
  }
  if (hit_way >= 0) {
    Block& b = row[hit_way];
    b.dirty = b.dirty || dirty;
    policy_->on_hit(set, static_cast<unsigned>(hit_way));
    return std::nullopt;
  }

  std::optional<Eviction> evicted;
  if (way < 0) {
    way = static_cast<int>(policy_->victim(set));
    Block& v = row[way];
    evicted = Eviction{block_addr_of(v.tag, set), v.dirty, v.owner, v.gclass};
    if (v.owner.is_gpu()) --gpu_blocks_;
    --valid_blocks_;
  }

  Block& b = row[way];
  b = Block{tag, true, dirty, owner, gclass};
  tag_row[way] = key;
  ++valid_blocks_;
  if (owner.is_gpu()) ++gpu_blocks_;
  policy_->on_fill(set, static_cast<unsigned>(way));
  return evicted;
}

std::optional<Eviction> SetAssocCache::invalidate(Addr addr) {
  const std::uint64_t set = set_of(addr);
  const int way = find_way(set, tag_of(addr));
  if (way < 0) return std::nullopt;
  Block& b = blocks_[set * cfg_.ways + way];
  Eviction ev{block_base(addr), b.dirty, b.owner, b.gclass};
  if (b.owner.is_gpu()) --gpu_blocks_;
  --valid_blocks_;
  b.valid = false;
  b.dirty = false;
  way_tags_[set * cfg_.ways + static_cast<unsigned>(way)] = 0;
  return ev;
}

std::vector<Addr> SetAssocCache::drain_dirty() {
  std::vector<Addr> dirty;
  for (std::uint64_t set = 0; set < sets_; ++set) {
    for (unsigned w = 0; w < cfg_.ways; ++w) {
      Block& b = blocks_[set * cfg_.ways + w];
      if (b.valid && b.dirty) {
        dirty.push_back(block_addr_of(b.tag, set));
        b.dirty = false;
      }
    }
  }
  return dirty;
}

std::optional<Eviction> SetAssocCache::access(Addr addr, bool write,
                                              SourceId owner,
                                              GpuAccessClass gclass,
                                              bool& hit) {
  hit = lookup(addr, write);
  if (hit) return std::nullopt;
  return fill(addr, owner, gclass, write);
}

std::optional<std::string> SetAssocCache::consistency_error() const {
  std::uint64_t valid = 0;
  std::uint64_t gpu = 0;
  for (std::uint64_t set = 0; set < sets_; ++set) {
    const Block* row = &blocks_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
      if (!row[w].valid) continue;
      ++valid;
      if (row[w].owner.is_gpu()) ++gpu;
      for (unsigned w2 = w + 1; w2 < cfg_.ways; ++w2) {
        if (row[w2].valid && row[w2].tag == row[w].tag) {
          std::ostringstream os;
          os << name_ << ": duplicate valid tag 0x" << std::hex << row[w].tag
             << std::dec << " in set " << set << " (ways " << w << " and "
             << w2 << ")";
          return os.str();
        }
      }
    }
  }
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Addr expect =
        blocks_[i].valid ? (blocks_[i].tag << 1) | 1 : Addr{0};
    if (way_tags_[i] != expect) {
      std::ostringstream os;
      os << name_ << ": way-tag lane diverged from tag store at block " << i
         << " (lane 0x" << std::hex << way_tags_[i] << ", expected 0x"
         << expect << std::dec << ")";
      return os.str();
    }
  }
  if (valid != valid_blocks_ || gpu != gpu_blocks_) {
    std::ostringstream os;
    os << name_ << ": occupancy counters (valid " << valid_blocks_ << ", gpu "
       << gpu_blocks_ << ") disagree with recount (valid " << valid << ", gpu "
       << gpu << ")";
    return os.str();
  }
  return std::nullopt;
}

std::uint64_t SetAssocCache::digest() const {
  Fnv1a64 h;
  h.mix(sets_);
  h.mix(cfg_.ways);
  for (const Block& b : blocks_) {
    h.mix_bool(b.valid);
    if (!b.valid) continue;
    h.mix(b.tag);
    h.mix_bool(b.dirty);
    h.mix_bool(b.owner.is_gpu());
    h.mix_byte(b.owner.index);
    h.mix_byte(static_cast<std::uint8_t>(b.gclass));
  }
  h.mix(hits_);
  h.mix(misses_);
  h.mix(policy_->digest());
  return h.value();
}

void SetAssocCache::save(ckpt::StateWriter& w) const {
  w.u64(blocks_.size());
  for (const Block& b : blocks_) {
    w.u64(b.tag);
    w.boolean(b.valid);
    w.boolean(b.dirty);
    w.u8(static_cast<std::uint8_t>(b.owner.kind));
    w.u8(b.owner.index);
    w.u8(static_cast<std::uint8_t>(b.gclass));
  }
  w.u64(hits_);
  w.u64(misses_);
  w.u64(gpu_blocks_);
  w.u64(valid_blocks_);
  policy_->save(w);
}

void SetAssocCache::load(ckpt::StateReader& r) {
  const std::uint64_t n = r.u64();
  if (n != blocks_.size()) {
    r.fail(name_ + ": tag-store geometry mismatch (snapshot has " +
           std::to_string(n) + " blocks, this config has " +
           std::to_string(blocks_.size()) + ")");
  }
  for (Block& b : blocks_) {
    b.tag = r.u64();
    b.valid = r.boolean();
    b.dirty = r.boolean();
    b.owner.kind = static_cast<SourceId::Kind>(r.u8());
    b.owner.index = r.u8();
    b.gclass = static_cast<GpuAccessClass>(r.u8());
  }
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    way_tags_[i] = blocks_[i].valid ? (blocks_[i].tag << 1) | 1 : Addr{0};
  }
  hits_ = r.u64();
  misses_ = r.u64();
  gpu_blocks_ = r.u64();
  valid_blocks_ = r.u64();
  policy_->load(r);
}

}  // namespace gpuqos
