// Miss Status Holding Registers: coalesce outstanding misses per block and
// hold the completion callbacks of all coalesced requesters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "check/auditors.hpp"
#include "common/types.hpp"

namespace gpuqos {

class MshrTable {
 public:
  explicit MshrTable(std::size_t capacity) : capacity_(capacity) {}

  /// True when no new miss can be tracked (capacity exhausted and the block
  /// has no existing entry).
  [[nodiscard]] bool full_for(Addr block_addr) const;

  /// Register a waiter for `block_addr`. Returns true when this allocated a
  /// *new* entry (i.e. the caller must forward the miss downstream); false
  /// when the request was coalesced onto an in-flight miss.
  bool allocate(Addr block_addr, std::function<void(Cycle)> waiter);

  /// Record that a new entry exists without a waiter (posted writes that
  /// still need a downstream fetch). Returns true when newly allocated.
  bool allocate_no_waiter(Addr block_addr);

  /// Complete the miss: pops the entry and returns its waiters.
  [[nodiscard]] std::vector<std::function<void(Cycle)>> complete(
      Addr block_addr);

  [[nodiscard]] bool pending(Addr block_addr) const {
    return entries_.contains(block_addr);
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Snapshot for the MSHR invariant auditor (src/check/auditors.hpp).
  /// `waiter_bound` is filled in by the owner (0 = unchecked).
  [[nodiscard]] MshrAuditView audit_view() const;

  /// FNV-1a digest of the live entries. Entries hash order-independently
  /// (XOR fold) so unordered_map iteration order cannot leak in.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::size_t capacity_;
  std::unordered_map<Addr, std::vector<std::function<void(Cycle)>>> entries_;
};

}  // namespace gpuqos
