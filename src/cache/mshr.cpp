#include "cache/mshr.hpp"

#include <utility>

namespace gpuqos {

bool MshrTable::full_for(Addr block_addr) const {
  return entries_.size() >= capacity_ && !entries_.contains(block_addr);
}

bool MshrTable::allocate(Addr block_addr, std::function<void(Cycle)> waiter) {
  auto [it, inserted] = entries_.try_emplace(block_addr);
  it->second.push_back(std::move(waiter));
  return inserted;
}

bool MshrTable::allocate_no_waiter(Addr block_addr) {
  auto [it, inserted] = entries_.try_emplace(block_addr);
  (void)it;
  return inserted;
}

std::vector<std::function<void(Cycle)>> MshrTable::complete(Addr block_addr) {
  auto it = entries_.find(block_addr);
  if (it == entries_.end()) return {};
  auto waiters = std::move(it->second);
  entries_.erase(it);
  return waiters;
}

}  // namespace gpuqos
