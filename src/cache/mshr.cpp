#include "cache/mshr.hpp"

#include <algorithm>
#include <utility>

namespace gpuqos {

bool MshrTable::full_for(Addr block_addr) const {
  return entries_.size() >= capacity_ && !entries_.contains(block_addr);
}

bool MshrTable::allocate(Addr block_addr, std::function<void(Cycle)> waiter) {
  auto [it, inserted] = entries_.try_emplace(block_addr);
  it->second.push_back(std::move(waiter));
  return inserted;
}

bool MshrTable::allocate_no_waiter(Addr block_addr) {
  auto [it, inserted] = entries_.try_emplace(block_addr);
  (void)it;
  return inserted;
}

std::vector<std::function<void(Cycle)>> MshrTable::complete(Addr block_addr) {
  auto it = entries_.find(block_addr);
  if (it == entries_.end()) return {};
  auto waiters = std::move(it->second);
  entries_.erase(it);
  return waiters;
}

MshrAuditView MshrTable::audit_view() const {
  MshrAuditView v;
  v.size = entries_.size();
  v.capacity = capacity_;
  for (const auto& [addr, waiters] : entries_) { /*det:ok: max is an
      order-independent fold*/
    v.max_waiters = std::max(v.max_waiters, waiters.size());
  }
  return v;
}

std::uint64_t MshrTable::digest() const {
  Fnv1a64 h;
  h.mix(capacity_);
  h.mix(entries_.size());
  // Per-entry hashes are folded with mix_unordered (commutative XOR), so
  // bucket order cannot leak into the digest.
  for (const auto& [addr, waiters] : entries_) { /*det:ok: order-independent fold*/
    Fnv1a64 e;
    e.mix(addr);
    e.mix(waiters.size());
    h.mix_unordered(e.value());
  }
  h.commit_unordered();
  return h.value();
}

}  // namespace gpuqos
