// Timed shared last-level cache (Table I): 16-way SRRIP, 10-cycle lookup,
// limited ports, MSHR-based miss handling, inclusive for CPU blocks
// (evictions back-invalidate the owning core) and non-inclusive for GPU
// blocks, with a pluggable bypass policy for GPU read-miss fills (used by the
// HeLM baseline and the Fig. 3 force-bypass experiment).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "check/auditors.hpp"
#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/mem_request.hpp"
#include "common/stats.hpp"

namespace gpuqos {

class Profiler;
class Telemetry;

/// Decides whether a GPU read-miss fill should skip LLC allocation.
class LlcBypassPolicy {
 public:
  virtual ~LlcBypassPolicy() = default;
  virtual bool should_bypass(const MemRequest& req) = 0;
};

class SharedLlc {
 public:
  /// `core` is the CPU core whose private hierarchy must drop the block;
  /// returns true when the core's copy was dirty (the LLC then writes the
  /// line back to DRAM on the core's behalf).
  using BackInvalidate = std::function<bool(unsigned core, Addr addr)>;
  using MemSender = std::function<void(MemRequest&&)>;

  SharedLlc(Engine& engine, const LlcConfig& cfg, StatRegistry& stats);

  void set_mem_sender(MemSender sender) { to_mem_ = std::move(sender); }
  void set_back_invalidate(BackInvalidate cb) { back_inval_ = std::move(cb); }
  void set_bypass_policy(LlcBypassPolicy* policy) { bypass_ = policy; }
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }
  void set_profiler(Profiler* prof) { prof_ = prof; }

  /// A request arriving at the LLC ring stop. Reads carry `on_complete`;
  /// writes (write-backs from L2 / GPU cache flushes) are posted.
  void request(MemRequest req);

  [[nodiscard]] const SetAssocCache& tags() const { return *tags_; }
  [[nodiscard]] std::uint64_t outstanding_reads() const {
    return outstanding_reads_;
  }

  /// Snapshot for the LLC/MSHR invariant auditors (src/check). `deep` also
  /// runs the O(cache) tag-store consistency scan.
  [[nodiscard]] LlcAuditView audit_view(bool deep) const;

  /// FNV-1a digest of tags, MSHRs, deferred queues, and port state.
  [[nodiscard]] std::uint64_t digest() const;

  /// True when no miss is in flight or parked: the state a barrier drain
  /// must reach before the LLC can be checkpointed.
  [[nodiscard]] bool quiescent() const {
    return mshrs_.empty() && deferred_cpu_.empty() &&
           deferred_gpu_.empty() && outstanding_reads_ == 0;
  }

  /// Checkpoint tags and port state (docs/CHECKPOINT.md). MSHR entries hold
  /// completion closures, so save() requires quiescent() — guaranteed by the
  /// barrier drain.
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  void start_lookup(MemRequest&& req);
  void do_access(MemRequest&& req);
  void handle_read_miss(MemRequest&& req);
  void install(const MemRequest& req, bool dirty);
  void handle_eviction(const Eviction& ev);
  [[nodiscard]] Cycle reserve_port();

  Engine& engine_;
  LlcConfig cfg_;  // ckpt:skip digest:skip: construction parameter
  StatRegistry& stats_;
  std::unique_ptr<SetAssocCache> tags_;
  MshrTable mshrs_;  // ckpt:skip: drained at the checkpoint barrier
  // Read misses parked on MSHR pressure. CPU misses drain first, and GPU
  // misses may hold at most (capacity - kCpuReservedMshrs) entries, so a
  // flooding GPU cannot starve CPU demand misses at the LLC.
  std::deque<MemRequest> deferred_cpu_;  // ckpt:skip: drained at the barrier
  std::deque<MemRequest> deferred_gpu_;  // ckpt:skip: drained at the barrier
  std::size_t gpu_held_mshrs_ = 0;
  MemSender to_mem_;            // ckpt:skip digest:skip: wiring callback
  BackInvalidate back_inval_;   // ckpt:skip digest:skip: wiring callback
  LlcBypassPolicy* bypass_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  Profiler* prof_ = nullptr;
  // Sampled-profiling decimation counter (obs/profiler.hpp).
  std::uint32_t prof_decim_ = 0;  // ckpt:skip digest:skip: host-side only
  Cycle port_cycle_ = 0;
  unsigned port_used_ = 0;
  std::uint64_t outstanding_reads_ = 0;  // ckpt:skip: zero at the barrier

  // Cached hot-path counters (see StatRegistry::counter_ptr).
  std::uint64_t* st_access_[2] = {};       // [cpu, gpu]
  std::uint64_t* st_hit_[2] = {};
  std::uint64_t* st_miss_[2] = {};
  std::uint64_t* st_gclass_[7] = {};       // GPU access class breakdown
  // Per-core counter pointer caches; the counters themselves live in (and
  // are checkpointed by) StatRegistry.
  std::vector<std::uint64_t*> st_cpu_access_;  // ckpt:skip digest:skip
  std::vector<std::uint64_t*> st_cpu_miss_;    // ckpt:skip digest:skip
  std::uint64_t* st_port_stall_ = nullptr;
  std::uint64_t* st_deferred_reads_ = nullptr;
  std::uint64_t* st_mshr_coalesced_ = nullptr;
  std::uint64_t* st_fill_bypassed_gpu_ = nullptr;
  std::uint64_t* st_back_invalidate_ = nullptr;
  std::uint64_t* st_gpu_evictions_ = nullptr;
  std::uint64_t* st_writebacks_ = nullptr;
  // Activity counters (obs/counters.hpp): registered eagerly so the export
  // schema is stable and digests match with or without observability.
  std::uint64_t* st_fills_ = nullptr;
  std::uint64_t* st_mshr_alloc_ = nullptr;
};

}  // namespace gpuqos
