// Replacement policies for set-associative caches: true-LRU and 2-bit SRRIP
// (Jaleel et al., ISCA 2010 — the paper's LLC policy, Table I).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace gpuqos {

namespace ckpt {
class StateWriter;
class StateReader;
}  // namespace ckpt

/// Per-set replacement state. `way` indices are cache ways; callers guarantee
/// victim() is only asked when every way is valid (invalid ways are filled
/// first by the cache itself).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual void on_fill(std::uint64_t set, unsigned way) = 0;
  virtual void on_hit(std::uint64_t set, unsigned way) = 0;
  virtual unsigned victim(std::uint64_t set) = 0;
  /// FNV-1a digest of the replacement state (determinism auditing): the
  /// victim sequence depends on it, so divergence must be visible here.
  [[nodiscard]] virtual std::uint64_t digest() const = 0;
  /// Checkpoint the replacement state (docs/CHECKPOINT.md). load() targets a
  /// freshly-constructed policy of the same geometry.
  virtual void save(ckpt::StateWriter& w) const = 0;
  virtual void load(ckpt::StateReader& r) = 0;
};

class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint64_t sets, unsigned ways);
  void on_fill(std::uint64_t set, unsigned way) override;
  void on_hit(std::uint64_t set, unsigned way) override;
  unsigned victim(std::uint64_t set) override;
  [[nodiscard]] std::uint64_t digest() const override;
  void save(ckpt::StateWriter& w) const override;
  void load(ckpt::StateReader& r) override;

 private:
  unsigned ways_;  // ckpt:skip digest:skip: geometry, fixed at construction
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamp_;  // sets * ways
};

/// 2-bit Static RRIP: insert at RRPV=2, promote to 0 on hit, victimize the
/// first way at RRPV=3 (aging all ways until one reaches 3).
class SrripPolicy final : public ReplacementPolicy {
 public:
  SrripPolicy(std::uint64_t sets, unsigned ways);
  void on_fill(std::uint64_t set, unsigned way) override;
  void on_hit(std::uint64_t set, unsigned way) override;
  unsigned victim(std::uint64_t set) override;
  [[nodiscard]] std::uint64_t digest() const override;
  void save(ckpt::StateWriter& w) const override;
  void load(ckpt::StateReader& r) override;

  /// Insertion RRPV override hook (used by tests and by distant-insertion
  /// ablations); default 2.
  void set_insert_rrpv(std::uint8_t v) { insert_rrpv_ = v; }

 private:
  unsigned ways_;  // ckpt:skip digest:skip: geometry, fixed at construction
  std::uint8_t insert_rrpv_ = 2;
  std::vector<std::uint8_t> rrpv_;  // sets * ways
};

[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(
    bool srrip, std::uint64_t sets, unsigned ways);

}  // namespace gpuqos
