#include "cache/replacement.hpp"

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {

LruPolicy::LruPolicy(std::uint64_t sets, unsigned ways)
    : ways_(ways), stamp_(sets * ways, 0) {}

void LruPolicy::on_fill(std::uint64_t set, unsigned way) {
  stamp_[set * ways_ + way] = ++tick_;
}

void LruPolicy::on_hit(std::uint64_t set, unsigned way) {
  stamp_[set * ways_ + way] = ++tick_;
}

unsigned LruPolicy::victim(std::uint64_t set) {
  unsigned best = 0;
  std::uint64_t best_stamp = stamp_[set * ways_];
  for (unsigned w = 1; w < ways_; ++w) {
    const std::uint64_t s = stamp_[set * ways_ + w];
    if (s < best_stamp) {
      best_stamp = s;
      best = w;
    }
  }
  return best;
}

std::uint64_t LruPolicy::digest() const {
  Fnv1a64 h;
  h.mix(tick_);
  for (std::uint64_t s : stamp_) h.mix(s);
  return h.value();
}

void LruPolicy::save(ckpt::StateWriter& w) const {
  w.u64(tick_);
  w.u64(stamp_.size());
  for (std::uint64_t s : stamp_) w.u64(s);
}

void LruPolicy::load(ckpt::StateReader& r) {
  tick_ = r.u64();
  const std::uint64_t n = r.u64();
  if (n != stamp_.size()) r.fail("LRU geometry mismatch");
  for (std::uint64_t& s : stamp_) s = r.u64();
}

SrripPolicy::SrripPolicy(std::uint64_t sets, unsigned ways)
    : ways_(ways), rrpv_(sets * ways, 3) {}

void SrripPolicy::on_fill(std::uint64_t set, unsigned way) {
  rrpv_[set * ways_ + way] = insert_rrpv_;
}

void SrripPolicy::on_hit(std::uint64_t set, unsigned way) {
  rrpv_[set * ways_ + way] = 0;
}

unsigned SrripPolicy::victim(std::uint64_t set) {
  std::uint8_t* row = &rrpv_[set * ways_];
  for (;;) {
    for (unsigned w = 0; w < ways_; ++w) {
      if (row[w] >= 3) return w;
    }
    for (unsigned w = 0; w < ways_; ++w) ++row[w];
  }
}

std::uint64_t SrripPolicy::digest() const {
  Fnv1a64 h;
  h.mix_byte(insert_rrpv_);
  for (std::uint8_t v : rrpv_) h.mix_byte(v);
  return h.value();
}

void SrripPolicy::save(ckpt::StateWriter& w) const {
  w.u8(insert_rrpv_);
  w.u64(rrpv_.size());
  for (std::uint8_t v : rrpv_) w.u8(v);
}

void SrripPolicy::load(ckpt::StateReader& r) {
  insert_rrpv_ = r.u8();
  const std::uint64_t n = r.u64();
  if (n != rrpv_.size()) r.fail("SRRIP geometry mismatch");
  for (std::uint8_t& v : rrpv_) v = r.u8();
}

std::unique_ptr<ReplacementPolicy> make_policy(bool srrip, std::uint64_t sets,
                                               unsigned ways) {
  if (srrip) return std::make_unique<SrripPolicy>(sets, ways);
  return std::make_unique<LruPolicy>(sets, ways);
}

}  // namespace gpuqos
