#include "cache/llc.hpp"

#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "check/digest.hpp"
#include "ckpt/state_io.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace gpuqos {
namespace {

/// MSHR entries a flooding GPU may never occupy (kept free for CPU misses).
constexpr std::size_t kCpuReservedMshrs = 8;

CacheConfig llc_tag_config(const LlcConfig& cfg) {
  CacheConfig c;
  c.size_bytes = cfg.size_bytes;
  c.ways = cfg.ways;
  c.block_bytes = cfg.block_bytes;
  c.latency = cfg.latency;
  c.srrip = true;  // Table I: two-bit SRRIP
  return c;
}

}  // namespace

SharedLlc::SharedLlc(Engine& engine, const LlcConfig& cfg, StatRegistry& stats)
    : engine_(engine),
      cfg_(cfg),
      stats_(stats),
      tags_(std::make_unique<SetAssocCache>(llc_tag_config(cfg), "llc")),
      mshrs_(cfg.mshrs) {
  st_access_[0] = stats_.counter_ptr("llc.access.cpu");
  st_access_[1] = stats_.counter_ptr("llc.access.gpu");
  st_hit_[0] = stats_.counter_ptr("llc.hit.cpu");
  st_hit_[1] = stats_.counter_ptr("llc.hit.gpu");
  st_miss_[0] = stats_.counter_ptr("llc.miss.cpu");
  st_miss_[1] = stats_.counter_ptr("llc.miss.gpu");
  for (int c = 0; c < 7; ++c) {
    st_gclass_[c] = stats_.counter_ptr(
        "llc.access.gpu." + to_string(static_cast<GpuAccessClass>(c)));
  }
  for (unsigned i = 0; i < 8; ++i) {
    st_cpu_access_.push_back(
        stats_.counter_ptr("llc.access.cpu" + std::to_string(i)));
    st_cpu_miss_.push_back(
        stats_.counter_ptr("llc.miss.cpu" + std::to_string(i)));
  }
  st_port_stall_ = stats_.counter_ptr("llc.port_stall_cycles");
  // Activity counters (obs/counters.hpp): unconditional, so the stats
  // digest is identical with and without observability attached.
  st_fills_ = stats_.counter_ptr("llc.fills");
  st_mshr_alloc_ = stats_.counter_ptr("llc.mshr_allocations");
}

namespace {
// Bump a lazily-created counter through a cached pointer. Creation stays
// on-first-use (an untouched counter must not appear in reports or the stats
// digest), but the string-keyed map lookup is paid once instead of per event.
inline void bump_lazy(std::uint64_t*& slot, StatRegistry& stats,
                      const char* name) {
  if (slot == nullptr) slot = stats.counter_ptr(name);
  ++*slot;
}
}  // namespace

Cycle SharedLlc::reserve_port() {
  const Cycle now = engine_.now();
  if (port_cycle_ < now) {
    port_cycle_ = now;
    port_used_ = 0;
  }
  while (port_used_ >= cfg_.ports) {
    ++port_cycle_;
    port_used_ = 0;
    ++*st_port_stall_;
  }
  ++port_used_;
  return port_cycle_;
}

void SharedLlc::request(MemRequest req) {
  req.addr = tags_->block_base(req.addr);
  const Cycle start = reserve_port();
  const Cycle done = start + cfg_.latency;
  if (telemetry_ != nullptr) {
    telemetry_->record_latency(LatStage::LlcLookup, req.source.is_gpu(),
                               done - engine_.now());
  }
  engine_.schedule(done - engine_.now(),
                   [this, r = std::move(req)]() mutable { do_access(std::move(r)); });
}

void SharedLlc::do_access(MemRequest&& req) {
  SampledProfScope<16> prof(prof_, ProfModule::Llc, prof_decim_);
  const bool gpu = req.source.is_gpu();
  ++*st_access_[gpu];
  if (gpu) {
    ++*st_gclass_[static_cast<int>(req.gclass)];
  } else {
    ++*st_cpu_access_[req.source.index];
  }

  if (req.is_write) {
    // Write-backs are full-line: allocate without fetching from DRAM
    // (paper footnote 6: dirty ROP lines flush to the LLC with no DRAM read).
    if (tags_->lookup(req.addr, /*write=*/true)) {
      ++*st_hit_[gpu];
      return;
    }
    ++*st_miss_[gpu];
    if (!gpu) ++*st_cpu_miss_[req.source.index];
    install(req, /*dirty=*/true);
    return;
  }

  if (tags_->lookup(req.addr, /*write=*/false)) {
    ++*st_hit_[gpu];
    if (req.on_complete) req.on_complete(engine_.now());
    return;
  }
  ++*st_miss_[gpu];
  if (!gpu) ++*st_cpu_miss_[req.source.index];
  handle_read_miss(std::move(req));
}

void SharedLlc::handle_read_miss(MemRequest&& req) {
  const bool gpu = req.source.is_gpu();
  // Stage stamp: first time this miss is seen (deferred re-entries keep the
  // original stamp so MSHR wait covers the whole parked period).
  if (telemetry_ != nullptr && req.miss_at == 0) req.miss_at = engine_.now();
  const std::size_t reserved =
      std::min<std::size_t>(kCpuReservedMshrs, mshrs_.capacity() / 2);
  const bool gpu_quota_hit = gpu && !mshrs_.pending(req.addr) &&
                             gpu_held_mshrs_ + reserved >= mshrs_.capacity();
  if (mshrs_.full_for(req.addr) || gpu_quota_hit) {
    // Structural stall: park the miss until an MSHR frees (stats for this
    // access were already counted exactly once in do_access).
    bump_lazy(st_deferred_reads_, stats_, "llc.deferred_reads");
    (gpu ? deferred_gpu_ : deferred_cpu_).push_back(std::move(req));
    return;
  }

  const bool is_new = mshrs_.allocate(req.addr, std::move(req.on_complete));
  if (is_new) ++*st_mshr_alloc_;
  if (telemetry_ != nullptr) {
    // MSHR acquisition wait: zero when granted immediately, the parked time
    // for misses that sat in a deferred queue (coalesces count too — they
    // stopped waiting for an entry at this point).
    telemetry_->record_latency(LatStage::MshrWait, gpu,
                               engine_.now() - req.miss_at);
  }
  if (!is_new) {
    bump_lazy(st_mshr_coalesced_, stats_, "llc.mshr_coalesced");
    return;
  }

  ++outstanding_reads_;
  if (gpu) ++gpu_held_mshrs_;
  // Build the DRAM request field-by-field and hand `req` itself to the
  // completion closure: the old `to_dram = req; [miss = req]` spelling
  // copied the request (std::function included) twice per miss. `req`'s
  // on_complete was already moved into the MSHR waiter list above; the
  // closure only reads the address/source/stamp fields.
  MemRequest to_dram;
  to_dram.addr = req.addr;
  to_dram.source = req.source;
  to_dram.gclass = req.gclass;
  to_dram.issued_at = req.issued_at;
  to_dram.miss_at = req.miss_at;
  to_dram.on_complete = [this, miss = std::move(req)](Cycle when) mutable {
    (void)when;
    ProfScope prof(prof_, ProfModule::Llc);
    --outstanding_reads_;
    if (telemetry_ != nullptr && miss.miss_at != 0) {
      telemetry_->record_latency(LatStage::LlcMissRoundtrip,
                                 miss.source.is_gpu(),
                                 engine_.now() - miss.miss_at);
    }
    const bool bypass = miss.source.is_gpu() && bypass_ != nullptr &&
                        bypass_->should_bypass(miss);
    if (bypass) {
      bump_lazy(st_fill_bypassed_gpu_, stats_, "llc.fill_bypassed.gpu");
    } else {
      install(miss, /*dirty=*/false);
    }
    for (auto& cb : mshrs_.complete(miss.addr)) {
      if (cb) cb(engine_.now());
    }
    if (miss.source.is_gpu() && gpu_held_mshrs_ > 0) --gpu_held_mshrs_;
    // One MSHR just freed: admit one parked miss, CPU demand first.
    auto& q = !deferred_cpu_.empty() ? deferred_cpu_ : deferred_gpu_;
    if (!q.empty()) {
      MemRequest next = std::move(q.front());
      q.pop_front();
      engine_.schedule(0, [this, r = std::move(next)]() mutable {
        handle_read_miss(std::move(r));
      });
    }
  };
  GPUQOS_CHECK(to_mem_, "read miss with no memory sender wired");
  to_mem_(std::move(to_dram));
}

void SharedLlc::install(const MemRequest& req, bool dirty) {
  ++*st_fills_;
  auto ev = tags_->fill(req.addr, req.source, req.gclass, dirty);
  if (ev) handle_eviction(*ev);
}

LlcAuditView SharedLlc::audit_view(bool deep) const {
  LlcAuditView v;
  v.mshr = mshrs_.audit_view();
  // Every requester that can wait on one block: all CPU cores' outstanding
  // reads plus the full GPU memory queue could coalesce in the worst case.
  // The owner knows neither count, so leave 0 (unchecked) and let
  // attach_checks fill it from the configuration.
  v.deferred_cpu = deferred_cpu_.size();
  v.deferred_gpu = deferred_gpu_.size();
  v.gpu_held_mshrs = gpu_held_mshrs_;
  v.outstanding_reads = outstanding_reads_;
  v.valid_blocks = tags_->valid_blocks();
  v.capacity_blocks = tags_->config().sets() * tags_->config().ways;
  if (deep) v.tag_error = tags_->consistency_error();
  return v;
}

std::uint64_t SharedLlc::digest() const {
  Fnv1a64 h;
  h.mix(tags_->digest());
  h.mix(mshrs_.digest());
  for (const auto* q : {&deferred_cpu_, &deferred_gpu_}) {
    h.mix(q->size());
    for (const MemRequest& r : *q) {
      h.mix(r.addr);
      h.mix_bool(r.source.is_gpu());
      h.mix_byte(r.source.index);
    }
  }
  h.mix(gpu_held_mshrs_);
  h.mix(outstanding_reads_);
  h.mix(port_cycle_);
  h.mix(port_used_);
  return h.value();
}

void SharedLlc::save(ckpt::StateWriter& w) const {
  if (!quiescent()) {
    throw ckpt::CkptError(
        "llc save() with misses in flight: the simulation was not drained "
        "before checkpointing");
  }
  tags_->save(w);
  w.u64(gpu_held_mshrs_);
  w.u64(port_cycle_);
  w.u32(port_used_);
}

void SharedLlc::load(ckpt::StateReader& r) {
  if (!quiescent()) r.fail("llc load() target has misses in flight");
  tags_->load(r);
  gpu_held_mshrs_ = r.u64();
  port_cycle_ = r.u64();
  port_used_ = r.u32();
}

void SharedLlc::handle_eviction(const Eviction& ev) {
  bool dirty = ev.dirty;
  if (ev.owner.is_cpu()) {
    // Inclusive for CPU blocks: the owning core must drop its private copies.
    bump_lazy(st_back_invalidate_, stats_, "llc.back_invalidate");
    if (back_inval_ && back_inval_(ev.owner.index, ev.block_addr)) dirty = true;
  } else {
    bump_lazy(st_gpu_evictions_, stats_, "llc.gpu_evictions");
  }
  if (dirty && to_mem_) {
    MemRequest wb;
    wb.addr = ev.block_addr;
    wb.is_write = true;
    wb.source = ev.owner;
    wb.gclass = ev.gclass;
    wb.issued_at = engine_.now();
    bump_lazy(st_writebacks_, stats_, "llc.writebacks");
    to_mem_(std::move(wb));
  }
}

}  // namespace gpuqos
