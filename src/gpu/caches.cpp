#include "gpu/caches.hpp"

#include <utility>

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {
namespace {
const SourceId kGpu = SourceId::gpu();
}

GpuCaches::GpuCaches(const GpuConfig& cfg)
    : tex_l0_(std::make_unique<SetAssocCache>(cfg.tex_l0, "tex_l0")),
      tex_l1_(std::make_unique<SetAssocCache>(cfg.tex_l1, "tex_l1")),
      tex_l2_(std::make_unique<SetAssocCache>(cfg.tex_l2, "tex_l2")),
      depth_l1_(std::make_unique<SetAssocCache>(cfg.depth_l1, "depth_l1")),
      depth_l2_(std::make_unique<SetAssocCache>(cfg.depth_l2, "depth_l2")),
      color_l1_(std::make_unique<SetAssocCache>(cfg.color_l1, "color_l1")),
      color_l2_(std::make_unique<SetAssocCache>(cfg.color_l2, "color_l2")),
      vertex_(std::make_unique<SetAssocCache>(cfg.vertex_cache, "vertex")),
      hiz_(std::make_unique<SetAssocCache>(cfg.hiz_cache, "hiz")),
      icache_(std::make_unique<SetAssocCache>(cfg.shader_icache, "shader_i")) {}

GpuCacheResult GpuCaches::access_ro(SetAssocCache* l0, SetAssocCache* l1,
                                    SetAssocCache* l2, Addr addr,
                                    GpuAccessClass cls) {
  (void)cls;
  const Addr block = (l2 != nullptr ? l2 : l1)->block_base(addr);
  if (l0 != nullptr && l0->lookup(block, false)) return {false};
  if (l1 != nullptr && l1->lookup(block, false)) {
    if (l0 != nullptr) (void)l0->fill(block, kGpu, cls, false);
    return {false};
  }
  if (l2 != nullptr && l2->lookup(block, false)) {
    if (l1 != nullptr) (void)l1->fill(block, kGpu, cls, false);
    if (l0 != nullptr) (void)l0->fill(block, kGpu, cls, false);
    return {false};
  }
  // Missed everywhere: fill all levels now (functional), fetch for timing.
  if (l2 != nullptr) (void)l2->fill(block, kGpu, cls, false);
  if (l1 != nullptr) (void)l1->fill(block, kGpu, cls, false);
  if (l0 != nullptr) (void)l0->fill(block, kGpu, cls, false);
  return {true};
}

GpuCacheResult GpuCaches::access_rw(SetAssocCache* l1, SetAssocCache* l2,
                                    Addr addr, bool write,
                                    GpuAccessClass cls) {
  const Addr block = l2->block_base(addr);
  if (l1->lookup(block, write)) return {false};
  if (l2->lookup(block, write)) {
    if (auto ev = l1->fill(block, kGpu, cls, write); ev && ev->dirty) {
      // L1 victim spills into L2.
      if (auto ev2 = l2->fill(ev->block_addr, kGpu, cls, true);
          ev2 && ev2->dirty && write_out_) {
        write_out_(ev2->block_addr, cls);
      }
    }
    return {false};
  }
  // Full miss: a fully-covered write needs no fetch (paper footnote 6 — the
  // ROP produces whole lines); a read (depth test / blend source) does.
  bool needs_mem = !write;
  if (auto ev = l2->fill(block, kGpu, cls, write); ev && ev->dirty && write_out_) {
    write_out_(ev->block_addr, cls);
  }
  if (auto ev = l1->fill(block, kGpu, cls, write); ev && ev->dirty) {
    if (auto ev2 = l2->fill(ev->block_addr, kGpu, cls, true);
        ev2 && ev2->dirty && write_out_) {
      write_out_(ev2->block_addr, cls);
    }
  }
  return {needs_mem};
}

GpuCacheResult GpuCaches::access_texture(Addr addr) {
  return access_ro(tex_l0_.get(), tex_l1_.get(), tex_l2_.get(), addr,
                   GpuAccessClass::Texture);
}

GpuCacheResult GpuCaches::access_depth(Addr addr, bool write) {
  return access_rw(depth_l1_.get(), depth_l2_.get(), addr, write,
                   GpuAccessClass::Depth);
}

GpuCacheResult GpuCaches::access_color(Addr addr, bool write) {
  return access_rw(color_l1_.get(), color_l2_.get(), addr, write,
                   GpuAccessClass::Color);
}

GpuCacheResult GpuCaches::access_vertex(Addr addr) {
  return access_ro(nullptr, vertex_.get(), nullptr, addr,
                   GpuAccessClass::Vertex);
}

GpuCacheResult GpuCaches::access_hiz(Addr addr, bool write) {
  const Addr block = hiz_->block_base(addr);
  bool hit = hiz_->lookup(block, write);
  if (!hit) (void)hiz_->fill(block, kGpu, GpuAccessClass::HiZ, write);
  return {!hit && !write};
}

GpuCacheResult GpuCaches::access_shader_instr(Addr addr) {
  return access_ro(nullptr, icache_.get(), nullptr, addr,
                   GpuAccessClass::ShaderInstr);
}

void GpuCaches::flush_render_targets() {
  if (!write_out_) return;
  for (SetAssocCache* c : {color_l1_.get(), color_l2_.get()}) {
    for (Addr a : c->drain_dirty()) write_out_(a, GpuAccessClass::Color);
  }
  for (SetAssocCache* c : {depth_l1_.get(), depth_l2_.get()}) {
    for (Addr a : c->drain_dirty()) write_out_(a, GpuAccessClass::Depth);
  }
}

std::uint64_t GpuCaches::digest() const {
  Fnv1a64 h;
  for (const auto* c :
       {tex_l0_.get(), tex_l1_.get(), tex_l2_.get(), depth_l1_.get(),
        depth_l2_.get(), color_l1_.get(), color_l2_.get(), vertex_.get(),
        hiz_.get(), icache_.get()}) {
    h.mix(c->digest());
  }
  return h.value();
}

void GpuCaches::save(ckpt::StateWriter& w) const {
  for (const auto* c :
       {tex_l0_.get(), tex_l1_.get(), tex_l2_.get(), depth_l1_.get(),
        depth_l2_.get(), color_l1_.get(), color_l2_.get(), vertex_.get(),
        hiz_.get(), icache_.get()}) {
    c->save(w);
  }
}

void GpuCaches::load(ckpt::StateReader& r) {
  for (auto* c : {tex_l0_.get(), tex_l1_.get(), tex_l2_.get(), depth_l1_.get(),
                  depth_l2_.get(), color_l1_.get(), color_l2_.get(),
                  vertex_.get(), hiz_.get(), icache_.get()}) {
    c->load(r);
  }
}

}  // namespace gpuqos
