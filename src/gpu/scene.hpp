// Synthetic 3D scene description consumed by the rendering pipeline.
//
// Substitute for the ATTILA DirectX/OpenGL API traces (see DESIGN.md §2):
// a frame is a sequence of draw batches over a tiled render target. The
// statistics that drive the memory system — tile coverage, overdraw,
// texture sampling intensity and locality, blend/depth traffic — are batch
// parameters, calibrated per game title in src/workloads/gpu_apps.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace gpuqos {

struct DrawBatch {
  std::uint32_t triangles = 128;   // geometry fed to the vertex stage
  double tile_coverage = 1.0;      // fraction of RT tiles this batch touches
  double frags_per_tile_px = 1.0;  // fragments per pixel of a covered tile
  unsigned tex_samples = 1;        // texture fetches per fragment (0 = none)
  bool depth_test = true;
  bool depth_write = true;
  bool blend = false;              // color read-modify-write
  unsigned shader_cycles = 8;      // ALU latency per fragment (GPU cycles)
  std::uint32_t texture_id = 0;    // which texture region is sampled
  double tex_locality = 0.85;      // P(sample falls in the previous block)
  unsigned mrt_targets = 1;        // render targets written (G-buffer passes)
};

struct SceneFrame {
  unsigned tiles_x = 10;
  unsigned tiles_y = 8;
  unsigned tile_px = 16;  // t x t render-target tiles (paper Section III-A)
  std::vector<DrawBatch> batches;

  // Surface layout in physical memory (set by the workload builder).
  Addr color_base = 0;   // already offset for double-buffering by the builder
  Addr depth_base = 0;
  Addr vertex_base = 0;
  Addr texture_base = 0;
  std::uint64_t texture_bytes = 1 << 20;
  unsigned bytes_per_pixel = 4;

  [[nodiscard]] unsigned num_tiles() const { return tiles_x * tiles_y; }
  [[nodiscard]] std::uint64_t pixels_per_tile() const {
    return static_cast<std::uint64_t>(tile_px) * tile_px;
  }
  [[nodiscard]] std::uint64_t frame_pixels() const {
    return num_tiles() * pixels_per_tile();
  }
};

/// Observer for render progress; implemented by the QoS frame-rate
/// prediction unit (src/qos/frpu.*) and by test fixtures. The pipeline
/// depends only on this interface, never on the QoS layer.
class FrameObserver {
 public:
  virtual ~FrameObserver() = default;
  /// A render-target update (one fragment written to `tile`).
  virtual void on_rt_update(unsigned tile, Cycle gpu_now) = 0;
  /// A GPU request left for the shared LLC.
  virtual void on_llc_access(Cycle gpu_now) = 0;
  /// The frame currently being rendered finished.
  virtual void on_frame_complete(Cycle gpu_now) = 0;
  /// A new frame starts; `frame` describes its render target.
  virtual void on_frame_start(const SceneFrame& frame, Cycle gpu_now) = 0;
};

}  // namespace gpuqos
