#include "gpu/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"
#include "common/units.hpp"
#include "obs/profiler.hpp"

namespace gpuqos {
namespace {
/// Fixed front-end depth added to every fragment's shading latency.
constexpr Cycle kPipeDepth = 8;
/// Most GMI requests a single fragment can generate (hiZ + 4 textures +
/// depth read + color read); issue is deferred when fewer slots are free.
constexpr std::size_t kMaxReqsPerFragment = 8;
}  // namespace

GpuPipeline::GpuPipeline(Engine& engine, const GpuConfig& cfg,
                         StatRegistry& stats, Rng rng)
    : engine_(engine),
      cfg_(cfg),
      stats_(stats),
      rng_(rng),
      caches_(std::make_unique<GpuCaches>(cfg)) {
  frag_gen_.resize(cfg.max_fragments_in_flight, 0);
  frag_outstanding_.resize(cfg.max_fragments_in_flight, 0);
  frag_ready_at_.resize(cfg.max_fragments_in_flight, 0);
  frag_tile_.resize(cfg.max_fragments_in_flight, 0);
  frag_active_.resize(cfg.max_fragments_in_flight, 0);
  free_slots_.reserve(cfg.max_fragments_in_flight);
  for (std::uint32_t i = 0; i < cfg.max_fragments_in_flight; ++i) {
    free_slots_.push_back(cfg.max_fragments_in_flight - 1 - i);
  }
  st_frags_ = stats_.counter_ptr("gpu.fragments");
  st_tiles_ = stats_.counter_ptr("gpu.tiles_retired");
  st_frames_ = stats_.counter_ptr("gpu.frames");
  st_frame_cycles_ = stats_.counter_ptr("gpu.frame_cycles_sum");
  st_stall_slots_ = stats_.counter_ptr("gpu.stall_no_context");
  st_stall_gmi_ = stats_.counter_ptr("gpu.stall_gmi_full");
}

void GpuPipeline::set_mem_interface(GpuMemInterface* gmi) {
  gmi_ = gmi;
  caches_->set_write_out(
      [this](Addr addr, GpuAccessClass cls) { send_write(addr, cls); });
}

void GpuPipeline::submit_frame(SceneFrame frame) {
  sequence_.push_back(frame);
  queue_.push_back(std::move(frame));
}

bool GpuPipeline::idle() const {
  return !rendering_ && queue_.empty() && !flushing_;
}

double GpuPipeline::latency_tolerance() const {
  if (tol_samples_ == 0) return 1.0;
  const double avg_free =
      static_cast<double>(tol_free_sum_) / static_cast<double>(tol_samples_);
  tol_samples_ = 0;
  tol_free_sum_ = 0;
  return avg_free / cfg_.max_fragments_in_flight;
}

void GpuPipeline::start_next_frame(Cycle gpu_now) {
  if (queue_.empty()) {
    if (!repeat_ || sequence_.empty()) return;
    for (const auto& f : sequence_) queue_.push_back(f);
  }
  frame_ = std::move(queue_.front());
  queue_.pop_front();
  rendering_ = true;
  frame_start_ = gpu_now;
  batch_idx_ = 0;
  frag_seq_ = 0;
  if (observer_ != nullptr) observer_->on_frame_start(frame_, gpu_now);
  begin_batch(gpu_now);
}

void GpuPipeline::begin_batch(Cycle gpu_now) {
  (void)gpu_now;
  if (batch_idx_ >= frame_.batches.size()) return;
  const DrawBatch& b = frame_.batches[batch_idx_];
  verts_left_ = static_cast<std::uint64_t>(b.triangles) * 3;

  batch_tiles_.clear();
  const unsigned tiles = frame_.num_tiles();
  if (b.tile_coverage >= 1.0) {
    for (unsigned t = 0; t < tiles; ++t) batch_tiles_.push_back(t);
  } else {
    // Deterministic pseudo-random subset with stable density.
    for (unsigned t = 0; t < tiles; ++t) {
      if (rng_.bernoulli(b.tile_coverage)) batch_tiles_.push_back(t);
    }
    if (batch_tiles_.empty()) {
      batch_tiles_.push_back(
          static_cast<std::uint32_t>(rng_.next_below(tiles)));
    }
  }
  tile_cursor_ = 0;
  frags_left_in_tile_ = static_cast<std::uint64_t>(
      b.frags_per_tile_px * static_cast<double>(frame_.pixels_per_tile()));
  if (frags_left_in_tile_ == 0) frags_left_in_tile_ = 1;
  px_cursor_ = 0;
  // Each batch starts sampling at a fresh spot of its texture.
  tex_cursor_ = frame_.texture_base +
                (b.texture_id % 4) * frame_.texture_bytes +
                rng_.next_below(std::max<std::uint64_t>(1, frame_.texture_bytes / 64)) * 64;
  // Shader program fetch for the new batch (posted read: the front-end
  // prefetches programs far ahead, so no stage blocks on it).
  const Addr prog = frame_.vertex_base + 0x40000000ull + batch_idx_ * 256;
  if (caches_->access_shader_instr(prog).needs_mem && gmi_ != nullptr) {
    MemRequest req;
    req.addr = prog;
    req.is_write = false;
    req.source = SourceId::gpu();
    req.gclass = GpuAccessClass::ShaderInstr;
    req.issued_at = engine_.now();
    (void)gmi_->enqueue(std::move(req));
  }
}

Addr GpuPipeline::next_texture_addr(const DrawBatch& batch) {
  if (rng_.bernoulli(batch.tex_locality)) {
    tex_cursor_ += 16;  // adjacent texels, same or next block
  } else {
    const std::uint64_t blocks =
        std::max<std::uint64_t>(1, frame_.texture_bytes / 64);
    tex_cursor_ = frame_.texture_base +
                  (batch.texture_id % 4) * frame_.texture_bytes +
                  rng_.next_below(blocks) * 64;
  }
  return tex_cursor_;
}

bool GpuPipeline::send_read(Addr addr, GpuAccessClass cls, std::uint32_t slot,
                            std::uint32_t gen) {
  MemRequest req;
  req.addr = addr;
  req.is_write = false;
  req.source = SourceId::gpu();
  req.gclass = cls;
  req.issued_at = engine_.now();
  req.on_complete = [this, slot, gen](Cycle when) {
    if (frag_gen_[slot] != gen || frag_active_[slot] == 0) return;
    if (frag_outstanding_[slot] > 0) --frag_outstanding_[slot];
    if (frag_outstanding_[slot] == 0) {
      frag_ready_at_[slot] =
          std::max<Cycle>(frag_ready_at_[slot], base_to_gpu_cycles(when));
      retire_q_.push_back(slot);
    }
  };
  return gmi_->enqueue(std::move(req));
}

void GpuPipeline::send_write(Addr addr, GpuAccessClass cls) {
  MemRequest req;
  req.addr = addr;
  req.is_write = true;
  req.source = SourceId::gpu();
  req.gclass = cls;
  req.issued_at = engine_.now();
  if (!gmi_->enqueue(std::move(req))) {
    // Posted writes that find the GMI full are deferred to the flush list;
    // this only happens under extreme throttling.
    flush_pending_.emplace_back(addr, cls);
    flushing_ = true;
  }
}

bool GpuPipeline::issue_fragment(Cycle gpu_now) {
  if (tile_cursor_ >= batch_tiles_.size()) return false;
  if (free_slots_.empty()) {
    ++*st_stall_slots_;
    return false;
  }
  if (gmi_->free_slots() < kMaxReqsPerFragment) {
    ++*st_stall_gmi_;
    return false;
  }

  const DrawBatch& b = frame_.batches[batch_idx_];
  const std::uint32_t tile = batch_tiles_[tile_cursor_];
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  ++frag_gen_[slot];
  frag_active_[slot] = 1;
  frag_outstanding_[slot] = 0;
  frag_tile_[slot] = tile;
  frag_ready_at_[slot] = gpu_now + b.shader_cycles + kPipeDepth;
  const std::uint32_t gen = frag_gen_[slot];

  // Pixel position: walk the tile in raster order, wrapping on overdraw.
  const std::uint64_t px_in_tile = px_cursor_ % frame_.pixels_per_tile();
  const std::uint64_t global_px =
      static_cast<std::uint64_t>(tile) * frame_.pixels_per_tile() + px_in_tile;
  ++px_cursor_;

  auto track = [&](bool needs_mem, Addr addr, GpuAccessClass cls) {
    if (!needs_mem) return;
    if (send_read(addr, cls, slot, gen)) ++frag_outstanding_[slot];
  };

  // Hierarchical-Z: one access per quad.
  if (frag_seq_ % 4 == 0) {
    const Addr hiz = frame_.depth_base + 128 * MiB + tile * 8ull;
    track(caches_->access_hiz(hiz, /*write=*/b.depth_write).needs_mem, hiz,
          GpuAccessClass::HiZ);
  }
  ++frag_seq_;

  for (unsigned t = 0; t < b.tex_samples; ++t) {
    const Addr ta = next_texture_addr(b);
    track(caches_->access_texture(ta).needs_mem, ta, GpuAccessClass::Texture);
  }

  const Addr daddr = frame_.depth_base + global_px * 4;
  if (b.depth_test) {
    track(caches_->access_depth(daddr, /*write=*/false).needs_mem, daddr,
          GpuAccessClass::Depth);
  }
  if (b.depth_write) {
    (void)caches_->access_depth(daddr, /*write=*/true);
  }

  // One surface per render target; deferred-shading passes write several
  // (G-buffer), multiplying color-stream footprint the way real engines do.
  for (unsigned t = 0; t < b.mrt_targets; ++t) {
    const Addr caddr = frame_.color_base + t * 64 * MiB +
                       global_px * frame_.bytes_per_pixel;
    if (b.blend && t == 0) {
      track(caches_->access_color(caddr, /*write=*/false).needs_mem, caddr,
            GpuAccessClass::Color);
    }
    (void)caches_->access_color(caddr, /*write=*/true);
  }

  if (frag_outstanding_[slot] == 0) retire_q_.push_back(slot);

  if (--frags_left_in_tile_ == 0) {
    ++*st_tiles_;
    ++tile_cursor_;
    px_cursor_ = 0;
    frags_left_in_tile_ = static_cast<std::uint64_t>(
        b.frags_per_tile_px * static_cast<double>(frame_.pixels_per_tile()));
    if (frags_left_in_tile_ == 0) frags_left_in_tile_ = 1;
  }
  return true;
}

void GpuPipeline::retire_fragments(Cycle gpu_now) {
  unsigned retired = 0;
  while (retired < cfg_.rop_units && !retire_q_.empty()) {
    const std::uint32_t slot = retire_q_.front();
    if (frag_active_[slot] == 0) {  // stale entry from a previous generation
      retire_q_.pop_front();
      continue;
    }
    if (frag_outstanding_[slot] > 0) {  // re-queued slot raced with a new miss
      retire_q_.pop_front();
      continue;
    }
    if (frag_ready_at_[slot] > gpu_now) break;  // in-order ROP: oldest first
    retire_q_.pop_front();
    frag_active_[slot] = 0;
    free_slots_.push_back(slot);
    ++frags_done_;
    ++*st_frags_;
    ++retired;
    if (observer_ != nullptr) {
      observer_->on_rt_update(frag_tile_[slot], gpu_now);
    }
  }
}

void GpuPipeline::advance_vertex_stage(Cycle gpu_now) {
  (void)gpu_now;
  unsigned budget = cfg_.vertex_rate;
  while (budget > 0 && verts_left_ > 0) {
    const Addr va = frame_.vertex_base + (vert_cursor_++ % (1u << 20)) * 32;
    if (caches_->access_vertex(va).needs_mem) {
      MemRequest req;
      req.addr = va;
      req.is_write = false;
      req.source = SourceId::gpu();
      req.gclass = GpuAccessClass::Vertex;
      req.issued_at = engine_.now();
      if (!gmi_->enqueue(std::move(req))) break;  // back-pressure
    }
    --verts_left_;
    --budget;
  }
}

void GpuPipeline::drain_flush(Cycle gpu_now) {
  (void)gpu_now;
  while (flush_cursor_ < flush_pending_.size()) {
    auto [addr, cls] = flush_pending_[flush_cursor_];
    MemRequest req;
    req.addr = addr;
    req.is_write = true;
    req.source = SourceId::gpu();
    req.gclass = cls;
    req.issued_at = engine_.now();
    if (!gmi_->enqueue(std::move(req))) return;  // retry next cycle
    ++flush_cursor_;
  }
  flush_pending_.clear();
  flush_cursor_ = 0;
  flushing_ = false;
}

void GpuPipeline::finish_frame(Cycle gpu_now) {
  // Resolve: push all dirty render-target blocks out to the LLC.
  caches_->flush_render_targets();
  last_frame_cycles_ = gpu_now - frame_start_;
  *st_frame_cycles_ += last_frame_cycles_;
  ++*st_frames_;
  ++frames_done_;
  rendering_ = false;
  if (observer_ != nullptr) observer_->on_frame_complete(gpu_now);
}

void GpuPipeline::tick_gpu(Cycle gpu_now) {
  if (frozen_) return;  // checkpoint barrier: no issue, no retire, no samples
  SampledProfScope<16> prof(prof_, ProfModule::GpuPipeline, prof_decim_);
  tol_free_sum_ += free_slots_.size();
  ++tol_samples_;

  if (flushing_) drain_flush(gpu_now);

  if (!rendering_) {
    start_next_frame(gpu_now);
    if (!rendering_) return;
  }

  retire_fragments(gpu_now);

  if (batch_idx_ < frame_.batches.size()) {
    if (verts_left_ > 0) {
      advance_vertex_stage(gpu_now);
    } else {
      unsigned issued = 0;
      while (issued < cfg_.raster_rate && issue_fragment(gpu_now)) ++issued;
      if (tile_cursor_ >= batch_tiles_.size()) {
        ++batch_idx_;
        begin_batch(gpu_now);
      }
    }
    return;
  }

  // All batches emitted: the frame completes when every fragment retired.
  if (active_fragments() == 0 && retire_q_.empty()) finish_frame(gpu_now);
}

std::uint64_t GpuPipeline::digest() const {
  Fnv1a64 h;
  h.mix(sequence_.size());
  h.mix(queue_.size());
  h.mix_bool(rendering_);
  h.mix(frame_start_);
  h.mix(frames_done_);
  h.mix(last_frame_cycles_);
  h.mix(batch_idx_);
  h.mix(verts_left_);
  h.mix(vert_cursor_);
  h.mix(batch_tiles_.size());
  for (std::uint32_t t : batch_tiles_) h.mix(t);
  h.mix(tile_cursor_);
  h.mix(frags_left_in_tile_);
  h.mix(px_cursor_);
  h.mix(tex_cursor_);
  h.mix(frag_seq_);
  // Lanes walked per slot in the original FragSlot field order, so the
  // stream matches the AoS layout this replaced.
  for (std::size_t i = 0; i < frag_gen_.size(); ++i) {
    h.mix(frag_gen_[i]);
    h.mix_byte(frag_outstanding_[i]);
    h.mix(frag_ready_at_[i]);
    h.mix(frag_tile_[i]);
    h.mix_bool(frag_active_[i] != 0);
  }
  h.mix(free_slots_.size());
  for (std::uint32_t s : free_slots_) h.mix(s);
  h.mix(retire_q_.size());
  for (std::uint32_t s : retire_q_) h.mix(s);
  h.mix(flush_pending_.size());
  h.mix(flush_cursor_);
  h.mix_bool(flushing_);
  h.mix(frags_done_);
  h.mix(tol_samples_);
  h.mix(tol_free_sum_);
  h.mix(rng_.digest());
  h.mix(caches_->digest());
  return h.value();
}

namespace {

void save_frame(ckpt::StateWriter& w, const SceneFrame& f) {
  w.u32(f.tiles_x);
  w.u32(f.tiles_y);
  w.u32(f.tile_px);
  w.u64(f.batches.size());
  for (const DrawBatch& b : f.batches) {
    w.u32(b.triangles);
    w.f64(b.tile_coverage);
    w.f64(b.frags_per_tile_px);
    w.u32(b.tex_samples);
    w.boolean(b.depth_test);
    w.boolean(b.depth_write);
    w.boolean(b.blend);
    w.u32(b.shader_cycles);
    w.u32(b.texture_id);
    w.f64(b.tex_locality);
    w.u32(b.mrt_targets);
  }
  w.u64(f.color_base);
  w.u64(f.depth_base);
  w.u64(f.vertex_base);
  w.u64(f.texture_base);
  w.u64(f.texture_bytes);
  w.u32(f.bytes_per_pixel);
}

SceneFrame load_frame(ckpt::StateReader& r) {
  SceneFrame f;
  f.tiles_x = r.u32();
  f.tiles_y = r.u32();
  f.tile_px = r.u32();
  f.batches.resize(r.u64());
  for (DrawBatch& b : f.batches) {
    b.triangles = r.u32();
    b.tile_coverage = r.f64();
    b.frags_per_tile_px = r.f64();
    b.tex_samples = r.u32();
    b.depth_test = r.boolean();
    b.depth_write = r.boolean();
    b.blend = r.boolean();
    b.shader_cycles = r.u32();
    b.texture_id = r.u32();
    b.tex_locality = r.f64();
    b.mrt_targets = r.u32();
  }
  f.color_base = r.u64();
  f.depth_base = r.u64();
  f.vertex_base = r.u64();
  f.texture_base = r.u64();
  f.texture_bytes = r.u64();
  f.bytes_per_pixel = r.u32();
  return f;
}

}  // namespace

void GpuPipeline::save(ckpt::StateWriter& w) const {
  if (!quiescent()) {
    throw ckpt::CkptError(
        "gpu pipeline save() with fragments waiting on memory: the "
        "simulation was not drained before checkpointing");
  }
  // The submitted sequence is reproduced by fresh construction; only its
  // length is recorded, for a sanity check at load time.
  w.u64(sequence_.size());
  w.u64(queue_.size());
  for (const SceneFrame& f : queue_) save_frame(w, f);
  w.boolean(rendering_);
  save_frame(w, frame_);
  w.u64(frame_start_);
  w.u64(frames_done_);
  w.u64(last_frame_cycles_);
  w.u64(batch_idx_);
  w.u64(verts_left_);
  w.u64(vert_cursor_);
  w.u64(batch_tiles_.size());
  for (std::uint32_t t : batch_tiles_) w.u32(t);
  w.u64(tile_cursor_);
  w.u64(frags_left_in_tile_);
  w.u64(px_cursor_);
  w.u64(tex_cursor_);
  w.u64(frag_seq_);
  w.u64(frag_gen_.size());
  for (std::size_t i = 0; i < frag_gen_.size(); ++i) {
    w.u32(frag_gen_[i]);
    w.u64(frag_ready_at_[i]);
    w.u32(frag_tile_[i]);
    w.boolean(frag_active_[i] != 0);
  }
  w.u64(free_slots_.size());
  for (std::uint32_t s : free_slots_) w.u32(s);
  w.u64(retire_q_.size());
  for (std::uint32_t s : retire_q_) w.u32(s);
  w.u64(flush_pending_.size());
  for (const auto& [addr, cls] : flush_pending_) {
    w.u64(addr);
    w.u8(static_cast<std::uint8_t>(cls));
  }
  w.u64(flush_cursor_);
  w.boolean(flushing_);
  w.u64(frags_done_);
  w.u64(tol_samples_);
  w.u64(tol_free_sum_);
  rng_.save(w);
  caches_->save(w);
}

void GpuPipeline::load(ckpt::StateReader& r) {
  if (const std::uint64_t n = r.u64(); n != sequence_.size()) {
    r.fail("gpu pipeline frame-sequence length mismatch (snapshot has " +
           std::to_string(n) + ", live run submitted " +
           std::to_string(sequence_.size()) + ")");
  }
  queue_.clear();
  const std::uint64_t queued = r.u64();
  for (std::uint64_t i = 0; i < queued; ++i) queue_.push_back(load_frame(r));
  rendering_ = r.boolean();
  frame_ = load_frame(r);
  frame_start_ = r.u64();
  frames_done_ = r.u64();
  last_frame_cycles_ = r.u64();
  batch_idx_ = r.u64();
  verts_left_ = r.u64();
  vert_cursor_ = r.u64();
  batch_tiles_.assign(r.u64(), 0);
  for (std::uint32_t& t : batch_tiles_) t = r.u32();
  tile_cursor_ = r.u64();
  frags_left_in_tile_ = r.u64();
  px_cursor_ = r.u64();
  tex_cursor_ = r.u64();
  frag_seq_ = r.u64();
  if (const std::uint64_t n = r.u64(); n != frag_gen_.size()) {
    r.fail("gpu pipeline fragment-context count mismatch");
  }
  for (std::size_t i = 0; i < frag_gen_.size(); ++i) {
    frag_gen_[i] = r.u32();
    frag_outstanding_[i] = 0;  // quiescent by construction of the snapshot
    frag_ready_at_[i] = r.u64();
    frag_tile_[i] = r.u32();
    frag_active_[i] = r.boolean() ? 1 : 0;
  }
  free_slots_.assign(r.u64(), 0);
  for (std::uint32_t& s : free_slots_) s = r.u32();
  retire_q_.clear();
  const std::uint64_t retq = r.u64();
  for (std::uint64_t i = 0; i < retq; ++i) retire_q_.push_back(r.u32());
  flush_pending_.clear();
  const std::uint64_t flushes = r.u64();
  for (std::uint64_t i = 0; i < flushes; ++i) {
    const Addr addr = r.u64();
    flush_pending_.emplace_back(addr, static_cast<GpuAccessClass>(r.u8()));
  }
  flush_cursor_ = r.u64();
  flushing_ = r.boolean();
  frags_done_ = r.u64();
  tol_samples_ = r.u64();
  tol_free_sum_ = r.u64();
  rng_.load(r);
  caches_->load(r);
}

}  // namespace gpuqos
