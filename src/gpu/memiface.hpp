// GPU memory interface (GMI): the single funnel through which every GPU
// request reaches the shared LLC.
//
// The paper's access-throttling unit (ATU) sits exactly here: it gates the
// rate at which queued requests may leave for the LLC. A full queue
// back-pressures the rendering pipeline, so throttling naturally slows frame
// production — the feedback loop the paper relies on (Section III-B).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/mem_request.hpp"
#include "common/stats.hpp"
#include "gpu/scene.hpp"

namespace gpuqos {

class CheckContext;
class Profiler;

/// Rate gate consulted before each request leaves the GPU. Implemented by
/// the QoS ATU; a null gate means no throttling (baseline).
class AccessGate {
 public:
  virtual ~AccessGate() = default;
  /// May the GPU issue one LLC access this GPU cycle?
  [[nodiscard]] virtual bool allow(Cycle gpu_now) = 0;
  /// One access was issued.
  virtual void on_issued(Cycle gpu_now) = 0;
};

class GpuMemInterface {
 public:
  using Sender = std::function<void(MemRequest&&)>;

  GpuMemInterface(const GpuConfig& cfg, StatRegistry& stats);

  void set_sender(Sender s) { sender_ = std::move(s); }
  void set_gate(AccessGate* gate) { gate_ = gate; }
  void set_observer(FrameObserver* obs) { observer_ = obs; }
  [[nodiscard]] FrameObserver* observer() const { return observer_; }

  /// While attached, every request issued to the LLC feeds the conservation
  /// ledger (Flow::GpuRead / Flow::GpuWrite), reads with duplicate-completion
  /// detection.
  void set_check(CheckContext* check) { check_ = check; }
  void set_profiler(Profiler* prof) { prof_ = prof; }

  /// Queue a request; false when the interface is full (back-pressure).
  bool enqueue(MemRequest&& req);

  [[nodiscard]] std::size_t free_slots() const {
    return cfg_.mem_queue_depth - queue_.size();
  }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  /// Issue up to `issue_width` requests to the LLC, subject to the gate.
  void tick(Cycle gpu_now);

  [[nodiscard]] std::uint64_t issued() const { return issued_; }

  /// FNV-1a digest of the queue contents and issue count.
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint the issue count (docs/CHECKPOINT.md). Queued requests hold
  /// completion closures, so save() requires an empty queue — the barrier
  /// drain leaves the GMI unfrozen precisely so it empties itself.
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  GpuConfig cfg_;  // ckpt:skip digest:skip: construction parameter
  StatRegistry& stats_;
  std::deque<MemRequest> queue_;
  Sender sender_;  // ckpt:skip digest:skip: wiring callback to the ring
  AccessGate* gate_ = nullptr;
  Profiler* prof_ = nullptr;
  // Sampled-profiling decimation counter (obs/profiler.hpp).
  std::uint32_t prof_decim_ = 0;  // ckpt:skip digest:skip: host-side only
  FrameObserver* observer_ = nullptr;
  CheckContext* check_ = nullptr;
  std::uint64_t issued_ = 0;
  unsigned issue_width_;  // ckpt:skip digest:skip: derived from cfg_
  std::uint64_t* st_issued_ = nullptr;
  std::uint64_t* st_throttled_ = nullptr;
  std::uint64_t* st_full_ = nullptr;
  // ATU token activity (obs/counters.hpp): grants = requests the gate let
  // through, denials = issue slots blocked by an exhausted token window.
  std::uint64_t* st_atu_grants_ = nullptr;
  std::uint64_t* st_atu_denials_ = nullptr;
};

}  // namespace gpuqos
