// The rendering pipeline (ATTILA-style unified-shader GPU, Table I).
//
// Per GPU cycle the pipeline: (1) retires shaded fragments through the ROP
// (bounded by `rop_units`), (2) rasterizes and issues new fragments into
// latency-tolerance contexts (bounded by `raster_rate`, free contexts, and
// GMI space), (3) advances the vertex stage. All cache levels are functional;
// blocks that miss the GPU hierarchy become LLC requests through the GMI,
// and a fragment only retires when its misses have returned — this is the
// latency tolerance that HeLM keys off and that GPU access throttling
// consumes (Sections II and III of the paper).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "gpu/caches.hpp"
#include "gpu/memiface.hpp"
#include "gpu/scene.hpp"

namespace gpuqos {

class Profiler;

class GpuPipeline {
 public:
  GpuPipeline(Engine& engine, const GpuConfig& cfg, StatRegistry& stats,
              Rng rng);

  void set_mem_interface(GpuMemInterface* gmi);
  void set_observer(FrameObserver* obs) { observer_ = obs; }
  void set_profiler(Profiler* prof) { prof_ = prof; }
  [[nodiscard]] FrameObserver* observer() const { return observer_; }

  /// Append a frame to the render queue.
  void submit_frame(SceneFrame frame);
  /// When the queue drains, re-submit the whole submitted sequence again
  /// (used by heterogeneous runs that outlive the frame sequence).
  void set_repeat(bool repeat) { repeat_ = repeat; }

  /// Advance one GPU cycle.
  void tick_gpu(Cycle gpu_now);

  [[nodiscard]] std::uint64_t frames_completed() const { return frames_done_; }
  [[nodiscard]] std::uint64_t fragments_retired() const { return frags_done_; }
  [[nodiscard]] bool idle() const;

  /// Fraction of free fragment contexts, averaged since the last call —
  /// the latency-tolerance signal used by the HeLM baseline.
  [[nodiscard]] double latency_tolerance() const;

  /// GPU cycles the most recently completed frame took.
  [[nodiscard]] Cycle last_frame_cycles() const { return last_frame_cycles_; }

  [[nodiscard]] GpuCaches& caches() { return *caches_; }

  /// FNV-1a digest of the full pipeline state: frame/batch cursors, fragment
  /// contexts, flush bookkeeping, RNG position, and the GPU cache hierarchy.
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint barrier support (docs/CHECKPOINT.md): a frozen pipeline's
  /// tick_gpu() returns immediately — no issue, no retire, no tolerance
  /// sampling — while in-flight read completions still land (they only
  /// decrement slot counters and append to the retire queue).
  void freeze() { frozen_ = true; }
  void unfreeze() { frozen_ = false; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// True when no fragment is waiting on an LLC read. Scans the two packed
  /// byte lanes, so the whole probe fits in a couple of cache lines.
  [[nodiscard]] bool quiescent() const {
    for (std::size_t i = 0; i < frag_active_.size(); ++i) {
      if (frag_active_[i] != 0 && frag_outstanding_[i] > 0) return false;
    }
    return true;
  }

  /// Checkpoint the full pipeline (frames included); requires quiescent().
  /// load() targets a freshly-constructed pipeline with the same config and
  /// the same submitted frame sequence.
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  void start_next_frame(Cycle gpu_now);
  void begin_batch(Cycle gpu_now);
  void advance_vertex_stage(Cycle gpu_now);
  bool issue_fragment(Cycle gpu_now);
  void retire_fragments(Cycle gpu_now);
  void drain_flush(Cycle gpu_now);
  void finish_frame(Cycle gpu_now);
  [[nodiscard]] Addr next_texture_addr(const DrawBatch& batch);
  bool send_read(Addr addr, GpuAccessClass cls, std::uint32_t slot,
                 std::uint32_t gen);
  void send_write(Addr addr, GpuAccessClass cls);
  [[nodiscard]] unsigned active_fragments() const {
    return cfg_.max_fragments_in_flight -
           checked_narrow<unsigned>(free_slots_.size());
  }

  Engine& engine_;
  GpuConfig cfg_;  // ckpt:skip digest:skip: construction parameter
  StatRegistry& stats_;
  Rng rng_;
  GpuMemInterface* gmi_ = nullptr;
  FrameObserver* observer_ = nullptr;
  std::unique_ptr<GpuCaches> caches_;

  // Frame sequencing.
  std::deque<SceneFrame> queue_;
  std::vector<SceneFrame> sequence_;
  bool frozen_ = false;  // ckpt:skip digest:skip: checkpoint barrier flag
  bool repeat_ = false;  // ckpt:skip digest:skip: workload configuration
  bool rendering_ = false;
  // digest:skip: frame content is deterministic given sequence_ and
  // frames_done_; progress through it (batch/tile/fragment cursors) is
  // digested field by field below.
  SceneFrame frame_;  // digest:skip
  Cycle frame_start_ = 0;
  std::uint64_t frames_done_ = 0;
  Cycle last_frame_cycles_ = 0;

  // Batch progression.
  std::size_t batch_idx_ = 0;
  std::uint64_t verts_left_ = 0;
  std::uint64_t vert_cursor_ = 0;
  std::vector<std::uint32_t> batch_tiles_;
  std::size_t tile_cursor_ = 0;
  std::uint64_t frags_left_in_tile_ = 0;
  std::uint64_t px_cursor_ = 0;
  Addr tex_cursor_ = 0;
  std::uint64_t frag_seq_ = 0;  // for per-quad hiZ accesses

  // Fragment contexts, structure-of-arrays: one lane per field, indexed by
  // slot. The retire loop and every read completion touch only the lanes
  // they need (outstanding/ready_at/active), instead of pulling a 24-byte
  // struct per slot through the cache. Digest/save/load walk the lanes in
  // the original per-slot field order, so streams and snapshots are
  // unchanged.
  std::vector<std::uint32_t> frag_gen_;
  // save() requires quiescent(), where every count below is zero.
  std::vector<std::uint8_t> frag_outstanding_;  // ckpt:skip: zero at barrier
  std::vector<Cycle> frag_ready_at_;
  std::vector<std::uint32_t> frag_tile_;
  std::vector<std::uint8_t> frag_active_;
  std::vector<std::uint32_t> free_slots_;
  std::deque<std::uint32_t> retire_q_;

  // End-of-frame RT flush.
  std::vector<std::pair<Addr, GpuAccessClass>> flush_pending_;
  std::size_t flush_cursor_ = 0;
  bool flushing_ = false;

  std::uint64_t frags_done_ = 0;

  // Latency-tolerance tracking.
  mutable std::uint64_t tol_samples_ = 0;
  mutable std::uint64_t tol_free_sum_ = 0;

  Profiler* prof_ = nullptr;
  // Sampled-profiling decimation counter (obs/profiler.hpp).
  std::uint32_t prof_decim_ = 0;  // ckpt:skip digest:skip: host-side only
  std::uint64_t* st_frags_ = nullptr;
  std::uint64_t* st_tiles_ = nullptr;  // activity counter (obs/counters.hpp)
  std::uint64_t* st_frames_ = nullptr;
  std::uint64_t* st_frame_cycles_ = nullptr;
  std::uint64_t* st_stall_slots_ = nullptr;
  std::uint64_t* st_stall_gmi_ = nullptr;
};

}  // namespace gpuqos
