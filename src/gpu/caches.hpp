// The GPU-internal cache hierarchy (Table I): three-level texture caches,
// two-level depth and color caches, vertex cache, hierarchical-Z cache, and
// shader instruction cache.
//
// The caches are functional (fill-on-access); timing is carried by the
// memory requests the bundle emits for blocks that miss all levels. Dirty
// evictions from the deepest level surface as write requests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/cache.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace gpuqos {

/// Outcome of a hierarchy access.
struct GpuCacheResult {
  bool needs_mem = false;  // block missed every level: fetch from LLC
};

class GpuCaches {
 public:
  /// `write_out` receives dirty blocks evicted from the deepest level of a
  /// read-write hierarchy (depth/color), tagged with their access class.
  using WriteOut = std::function<void(Addr, GpuAccessClass)>;

  explicit GpuCaches(const GpuConfig& cfg);

  void set_write_out(WriteOut cb) { write_out_ = std::move(cb); }

  GpuCacheResult access_texture(Addr addr);
  GpuCacheResult access_depth(Addr addr, bool write);
  GpuCacheResult access_color(Addr addr, bool write);
  GpuCacheResult access_vertex(Addr addr);
  GpuCacheResult access_hiz(Addr addr, bool write);
  GpuCacheResult access_shader_instr(Addr addr);

  /// End-of-frame resolve: flush all dirty depth/color blocks. Each flushed
  /// block is reported through `write_out`.
  void flush_render_targets();

  [[nodiscard]] const SetAssocCache& tex_l2() const { return *tex_l2_; }
  [[nodiscard]] const SetAssocCache& color_l2() const { return *color_l2_; }
  [[nodiscard]] const SetAssocCache& depth_l2() const { return *depth_l2_; }

  /// FNV-1a digest over every level of every hierarchy.
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint every level of every hierarchy, in fixed declaration order
  /// (docs/CHECKPOINT.md).
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  /// Two/three-level read-only lookup: fill upper levels on lower hits.
  GpuCacheResult access_ro(SetAssocCache* l0, SetAssocCache* l1,
                           SetAssocCache* l2, Addr addr, GpuAccessClass cls);
  /// Read-write two-level lookup with dirty write-back propagation.
  GpuCacheResult access_rw(SetAssocCache* l1, SetAssocCache* l2, Addr addr,
                           bool write, GpuAccessClass cls);

  std::unique_ptr<SetAssocCache> tex_l0_, tex_l1_, tex_l2_;
  std::unique_ptr<SetAssocCache> depth_l1_, depth_l2_;
  std::unique_ptr<SetAssocCache> color_l1_, color_l2_;
  std::unique_ptr<SetAssocCache> vertex_, hiz_, icache_;
  WriteOut write_out_;  // ckpt:skip digest:skip: wiring callback
};

}  // namespace gpuqos
