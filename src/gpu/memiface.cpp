#include "gpu/memiface.hpp"

#include <cassert>
#include <utility>

namespace gpuqos {

GpuMemInterface::GpuMemInterface(const GpuConfig& cfg, StatRegistry& stats)
    : cfg_(cfg), stats_(stats), issue_width_(cfg.llc_issue_width) {
  st_issued_ = stats_.counter_ptr("gpu.llc_accesses");
  st_throttled_ = stats_.counter_ptr("gpu.gmi_throttled_cycles");
  st_full_ = stats_.counter_ptr("gpu.gmi_full_rejections");
}

bool GpuMemInterface::enqueue(MemRequest&& req) {
  if (queue_.size() >= cfg_.mem_queue_depth) {
    ++*st_full_;
    return false;
  }
  queue_.push_back(std::move(req));
  return true;
}

void GpuMemInterface::tick(Cycle gpu_now) {
  assert(sender_);
  if (cfg_.llc_issue_interval > 1 && gpu_now % cfg_.llc_issue_interval != 0) {
    return;
  }
  for (unsigned i = 0; i < issue_width_ && !queue_.empty(); ++i) {
    if (gate_ != nullptr && !gate_->allow(gpu_now)) {
      ++*st_throttled_;
      return;
    }
    MemRequest req = std::move(queue_.front());
    queue_.pop_front();
    if (gate_ != nullptr) gate_->on_issued(gpu_now);
    if (observer_ != nullptr) observer_->on_llc_access(gpu_now);
    ++issued_;
    ++*st_issued_;
    sender_(std::move(req));
  }
}

}  // namespace gpuqos
