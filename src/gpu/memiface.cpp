#include "gpu/memiface.hpp"

#include <utility>

#include "check/check.hpp"
#include "check/context.hpp"
#include "check/digest.hpp"
#include "ckpt/state_io.hpp"
#include "obs/profiler.hpp"

namespace gpuqos {

GpuMemInterface::GpuMemInterface(const GpuConfig& cfg, StatRegistry& stats)
    : cfg_(cfg), stats_(stats), issue_width_(cfg.llc_issue_width) {
  st_issued_ = stats_.counter_ptr("gpu.llc_accesses");
  st_throttled_ = stats_.counter_ptr("gpu.gmi_throttled_cycles");
  st_full_ = stats_.counter_ptr("gpu.gmi_full_rejections");
  st_atu_grants_ = stats_.counter_ptr("qos.atu_token_grants");
  st_atu_denials_ = stats_.counter_ptr("qos.atu_token_denials");
}

bool GpuMemInterface::enqueue(MemRequest&& req) {
  if (queue_.size() >= cfg_.mem_queue_depth) {
    ++*st_full_;
    return false;
  }
  queue_.push_back(std::move(req));
  return true;
}

void GpuMemInterface::tick(Cycle gpu_now) {
  SampledProfScope<16> prof(prof_, ProfModule::GpuMem, prof_decim_);
  GPUQOS_CHECK(sender_, "GMI has no LLC sender wired");
  if (cfg_.llc_issue_interval > 1 && gpu_now % cfg_.llc_issue_interval != 0) {
    return;
  }
  for (unsigned i = 0; i < issue_width_ && !queue_.empty(); ++i) {
    if (gate_ != nullptr && !gate_->allow(gpu_now)) {
      ++*st_throttled_;
      ++*st_atu_denials_;
      return;
    }
    MemRequest req = std::move(queue_.front());
    queue_.pop_front();
    if (gate_ != nullptr) {
      gate_->on_issued(gpu_now);
      ++*st_atu_grants_;
    }
    if (observer_ != nullptr) observer_->on_llc_access(gpu_now);
    if (check_ != nullptr) {
      if (req.is_write) {
        check_->on_inject(CheckContext::Flow::GpuWrite);
      } else {
        check_->on_inject(CheckContext::Flow::GpuRead);
        req.on_complete = check_->guard_retire(std::move(req.on_complete),
                                               CheckContext::Flow::GpuRead);
      }
    }
    ++issued_;
    ++*st_issued_;
    sender_(std::move(req));
  }
}

std::uint64_t GpuMemInterface::digest() const {
  Fnv1a64 h;
  h.mix(queue_.size());
  for (const MemRequest& req : queue_) {
    h.mix(req.addr);
    h.mix_bool(req.is_write);
    h.mix_byte(static_cast<std::uint8_t>(req.gclass));
    h.mix(req.issued_at);
  }
  h.mix(issued_);
  return h.value();
}

void GpuMemInterface::save(ckpt::StateWriter& w) const {
  if (!queue_.empty()) {
    throw ckpt::CkptError(
        "gmi save() with queued requests: the simulation was not drained "
        "before checkpointing");
  }
  w.u64(issued_);
}

void GpuMemInterface::load(ckpt::StateReader& r) {
  if (!queue_.empty()) r.fail("gmi load() target has queued requests");
  issued_ = r.u64();
}

}  // namespace gpuqos
