#include "sched/dynprio.hpp"

#include "sched/cpu_prio.hpp"

namespace gpuqos {

std::int64_t DynPrioScheduler::pick(const DramQueue& queue,
                                    const BankView& banks, Cycle now) {
  if (signals_ == nullptr || !signals_->estimating) {
    return fallback_.pick(queue, banks, now);  // no estimate: equal priority
  }
  if (signals_->gpu_urgent) {
    const std::int64_t gpu_pick = pick_frfcfs_filtered(
        queue, banks, now, starvation_cap_, /*want_gpu=*/true);
    if (gpu_pick >= 0) return gpu_pick;
    return fallback_.pick(queue, banks, now);
  }
  if (!signals_->gpu_meets_target) {
    return fallback_.pick(queue, banks, now);  // lagging: equal priority
  }
  const std::int64_t cpu_pick = pick_frfcfs_filtered(
      queue, banks, now, starvation_cap_, /*want_gpu=*/false);
  if (cpu_pick >= 0) return cpu_pick;
  return fallback_.pick(queue, banks, now);
}

}  // namespace gpuqos
