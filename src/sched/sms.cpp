#include "sched/sms.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

namespace gpuqos {

unsigned SmsScheduler::source_index(const SourceId& s) {
  return s.is_gpu() ? kMaxSources - 1
                    : std::min<unsigned>(s.index, kMaxSources - 2);
}

void SmsScheduler::on_enqueue(const DramQueueEntry& entry) {
  SourceState& st = sources_[source_index(entry.req.source)];
  const bool need_new =
      st.batches.empty() || st.batches.back().closed ||
      st.batches.back().last_row != entry.row ||
      st.batches.back().ids.size() >= params_.batch_cap;
  if (need_new) {
    if (!st.batches.empty() && !st.batches.back().closed) {
      st.batches.back().closed = true;
    }
    Batch b;
    b.last_row = entry.row;
    b.opened_at = entry.arrival;
    st.batches.push_back(std::move(b));
  }
  st.batches.back().ids.push_back(entry.id);
}

void SmsScheduler::close_stale_batches(Cycle now) {
  for (auto& st : sources_) {
    if (!st.batches.empty() && !st.batches.back().closed &&
        now - st.batches.back().opened_at > params_.batch_timeout) {
      st.batches.back().closed = true;
    }
  }
}

std::int64_t SmsScheduler::pick(const DramQueue& queue, const BankView& banks,
                                Cycle now) {
  if (queue.empty()) return -1;
  close_stale_batches(now);

  auto head_id = [&](unsigned s) -> std::int64_t {
    const auto& b = sources_[s].batches;
    if (b.empty() || !b.front().closed || b.front().ids.empty()) return -1;
    return static_cast<std::int64_t>(b.front().ids.front());
  };
  // Queue index of source s's head, or -1 (no closed batch / stale id).
  auto head_index = [&](unsigned s) -> std::ptrdiff_t {
    const std::int64_t id = head_id(s);
    if (id < 0) return -1;
    return queue.index_of(static_cast<std::uint64_t>(id));
  };

  // Classify every source head: a CAS-ready head (open row, free bank) must
  // always win over opening a new row, otherwise two same-bank batches
  // livelock by destroying each other's activates before the CAS issues.
  std::vector<unsigned> cas_ready;
  std::vector<unsigned> act_ready;
  for (unsigned s = 0; s < kMaxSources; ++s) {
    const std::ptrdiff_t idx = head_index(s);
    if (idx < 0) {
      if (current_source_ == static_cast<int>(s)) current_source_ = -1;
      continue;
    }
    const auto i = static_cast<std::size_t>(idx);
    const unsigned bank = queue.bank(i);
    if (banks.bank_ready_at(bank) > now) continue;  // bank busy
    if (banks.is_row_hit(bank, queue.row(i))) {
      cas_ready.push_back(s);
    } else {
      act_ready.push_back(s);
    }
  }

  auto choose = [&](const std::vector<unsigned>& from) -> unsigned {
    // Prefer continuing the batch currently being served.
    for (unsigned s : from) {
      if (current_source_ == static_cast<int>(s)) return s;
    }
    if (rng_.bernoulli(params_.shortest_first_prob)) {
      unsigned best = from.front();
      for (unsigned s : from) {
        if (sources_[s].batches.front().ids.size() <
            sources_[best].batches.front().ids.size()) {
          best = s;
        }
      }
      return best;
    }
    for (unsigned off = 0; off < kMaxSources; ++off) {
      const unsigned s = (rr_pointer_ + off) % kMaxSources;
      if (std::find(from.begin(), from.end(), s) != from.end()) {
        rr_pointer_ = (s + 1) % kMaxSources;
        return s;
      }
    }
    return from.front();
  };

  if (!cas_ready.empty()) {
    const unsigned chosen = choose(cas_ready);
    current_source_ = static_cast<int>(chosen);
    return head_id(chosen);
  }
  if (!act_ready.empty()) {
    const unsigned chosen = choose(act_ready);
    current_source_ = static_cast<int>(chosen);
    return head_id(chosen);
  }
  return -1;  // batches forming or every candidate bank busy
}

void SmsScheduler::on_issue(const DramQueueEntry& entry) {
  // The issued request is the head of exactly one source's front batch.
  for (unsigned s = 0; s < kMaxSources; ++s) {
    SourceState& st = sources_[s];
    if (st.batches.empty() || st.batches.front().ids.empty()) continue;
    if (st.batches.front().ids.front() != entry.id) continue;
    st.batches.front().ids.pop_front();
    if (st.batches.front().ids.empty()) {
      st.batches.pop_front();
      if (current_source_ == static_cast<int>(s)) current_source_ = -1;
    }
    return;
  }
}

void SmsScheduler::save(ckpt::StateWriter& w) const {
  for (const SourceState& st : sources_) {
    if (!st.batches.empty()) {
      throw ckpt::CkptError(
          "SMS save() with batches still forming: the simulation was not "
          "drained before checkpointing");
    }
  }
  rng_.save(w);
  w.i64(current_source_);
  w.u32(rr_pointer_);
}

void SmsScheduler::load(ckpt::StateReader& r) {
  rng_.load(r);
  const std::int64_t src = r.i64();
  if (src < -1 || src > std::numeric_limits<int>::max()) {
    r.fail("sms: current_source " + std::to_string(src) + " out of range");
  }
  current_source_ = static_cast<int>(src);
  rr_pointer_ = r.u32();
}

}  // namespace gpuqos
