#include "sched/helm.hpp"

namespace gpuqos {

bool HelmBypassPolicy::should_bypass(const MemRequest& req) {
  if (!req.source.is_gpu() || req.is_write) return false;
  const bool shader_sourced = req.gclass == GpuAccessClass::Texture ||
                              req.gclass == GpuAccessClass::ShaderInstr;
  if (!shader_sourced) return false;
  return signals_ != nullptr && signals_->gpu_latency_tolerance >= threshold_;
}

}  // namespace gpuqos
