#include "sched/cpu_prio.hpp"

namespace gpuqos {

std::int64_t CpuPriorityScheduler::pick(const DramQueue& queue,
                                        const BankView& banks, Cycle now) {
  if (signals_ == nullptr || !signals_->cpu_prio_boost) {
    return fallback_.pick(queue, banks, now);
  }
  const std::int64_t cpu_pick = pick_frfcfs_filtered(
      queue, banks, now, starvation_cap_, /*want_gpu=*/false);
  if (cpu_pick >= 0) return cpu_pick;
  return fallback_.pick(queue, banks, now);
}

}  // namespace gpuqos
