// Unconditional GPU read-miss LLC bypass — the Figure 3 motivation
// experiment ("all GPU read misses are forced to bypass the LLC").
#pragma once

#include "cache/llc.hpp"

namespace gpuqos {

class ForceBypassPolicy : public LlcBypassPolicy {
 public:
  bool should_bypass(const MemRequest& req) override;
};

}  // namespace gpuqos
