#include "sched/bypass.hpp"

namespace gpuqos {

bool ForceBypassPolicy::should_bypass(const MemRequest& req) {
  return req.source.is_gpu() && !req.is_write;
}

}  // namespace gpuqos
