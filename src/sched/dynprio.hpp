// Dynamic priority DRAM scheduler (Jeong et al., DAC 2012), adapted per the
// paper: it uses the paper's frame-rate estimation to track frame progress.
//
//  * Last 10% of the predicted frame time: GPU requests get top priority.
//  * GPU lagging its target (or no estimate available): equal priority, i.e.
//    plain FR-FCFS.
//  * GPU comfortably ahead: CPU requests first.
#pragma once

#include "common/qos_signals.hpp"
#include "dram/frfcfs.hpp"
#include "dram/scheduler.hpp"

namespace gpuqos {

class DynPrioScheduler : public IDramScheduler {
 public:
  explicit DynPrioScheduler(const QosSignals* signals,
                            Cycle starvation_cap = 2000)
      : signals_(signals), fallback_(starvation_cap),
        starvation_cap_(starvation_cap) {}

  [[nodiscard]] std::int64_t pick(const DramQueue& queue,
                                  const BankView& banks, Cycle now) override;

 private:
  const QosSignals* signals_;
  FrFcfsScheduler fallback_;
  Cycle starvation_cap_;
};

}  // namespace gpuqos
