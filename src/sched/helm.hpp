// HeLM-style LLC management (Mekkat et al., PACT 2013): GPU read misses that
// originate from latency-tolerant shader cores bypass the LLC, shifting
// capacity to co-running CPU applications.
//
// Latency tolerance is the fraction of free fragment contexts reported by
// the pipeline (plenty of ready work => misses are hidden). Shader-sourced
// accesses are texture fetches and shader instruction fetches; fixed-function
// ROP traffic (depth/color) is never bypassed, matching HeLM's design.
#pragma once

#include "cache/llc.hpp"
#include "common/qos_signals.hpp"

namespace gpuqos {

class HelmBypassPolicy : public LlcBypassPolicy {
 public:
  explicit HelmBypassPolicy(const QosSignals* signals,
                            double tolerance_threshold = 0.10)
      : signals_(signals), threshold_(tolerance_threshold) {}

  bool should_bypass(const MemRequest& req) override;

  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  const QosSignals* signals_;
  double threshold_;
};

}  // namespace gpuqos
