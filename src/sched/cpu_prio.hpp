// FR-FCFS with QoS-driven CPU prioritization (paper Section III-C).
//
// While the governor signals that the GPU meets its QoS target, CPU requests
// are scheduled first (FR-FCFS among them); GPU requests only proceed when no
// CPU request is pending. Otherwise this is exactly the baseline FR-FCFS.
#pragma once

#include "common/qos_signals.hpp"
#include "dram/frfcfs.hpp"
#include "dram/scheduler.hpp"

namespace gpuqos {

class CpuPriorityScheduler : public IDramScheduler {
 public:
  explicit CpuPriorityScheduler(const QosSignals* signals,
                                Cycle starvation_cap = 2000)
      : signals_(signals), fallback_(starvation_cap),
        starvation_cap_(starvation_cap) {}

  [[nodiscard]] std::int64_t pick(const DramQueue& queue,
                                  const BankView& banks, Cycle now) override;

 private:
  const QosSignals* signals_;
  FrFcfsScheduler fallback_;
  Cycle starvation_cap_;
};

/// FR-FCFS restricted to one source class (`want_gpu` selects GPU entries,
/// otherwise CPU); -1 when none match. Shared by the priority-class
/// schedulers (CPU-prio, DynPrio). The filter reads the queue's packed
/// source lane, so the scan stays on the SoA hot path.
[[nodiscard]] inline std::int64_t pick_frfcfs_filtered(const DramQueue& queue,
                                                       const BankView& banks,
                                                       Cycle now,
                                                       Cycle starvation_cap,
                                                       bool want_gpu) {
  // Every return path requires a ready bank; skip the scan while none is.
  if (!banks.any_ready(now)) return -1;
  std::ptrdiff_t oldest = -1;
  std::ptrdiff_t cas = -1;       // issuable row hit
  std::ptrdiff_t activate = -1;  // conflict on a free bank
  const std::size_t n = queue.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (queue.is_gpu(i) != want_gpu) continue;
    if (oldest < 0) oldest = static_cast<std::ptrdiff_t>(i);
    const unsigned bank = queue.bank(i);
    if (banks.bank_ready_at(bank) > now) continue;
    if (banks.is_row_hit(bank, queue.row(i))) {
      cas = static_cast<std::ptrdiff_t>(i);
      break;  // oldest issuable row hit; `oldest` was set at or before it
    }
    if (activate < 0) activate = static_cast<std::ptrdiff_t>(i);
  }
  if (oldest < 0) return -1;
  const auto o = static_cast<std::size_t>(oldest);
  if (now - queue.arrival(o) > starvation_cap &&
      banks.bank_ready_at(queue.bank(o)) <= now) {
    return static_cast<std::int64_t>(queue.id(o));
  }
  const std::ptrdiff_t chosen = cas >= 0 ? cas : activate;
  return chosen >= 0 ? static_cast<std::int64_t>(
                           queue.id(static_cast<std::size_t>(chosen)))
                     : -1;
}

}  // namespace gpuqos
