// FR-FCFS with QoS-driven CPU prioritization (paper Section III-C).
//
// While the governor signals that the GPU meets its QoS target, CPU requests
// are scheduled first (FR-FCFS among them); GPU requests only proceed when no
// CPU request is pending. Otherwise this is exactly the baseline FR-FCFS.
#pragma once

#include "common/qos_signals.hpp"
#include "dram/frfcfs.hpp"
#include "dram/scheduler.hpp"

namespace gpuqos {

class CpuPriorityScheduler : public IDramScheduler {
 public:
  explicit CpuPriorityScheduler(const QosSignals* signals,
                                Cycle starvation_cap = 2000)
      : signals_(signals), fallback_(starvation_cap),
        starvation_cap_(starvation_cap) {}

  [[nodiscard]] std::int64_t pick(const std::deque<DramQueueEntry>& queue,
                                  const BankView& banks, Cycle now) override;

 private:
  const QosSignals* signals_;
  FrFcfsScheduler fallback_;
  Cycle starvation_cap_;
};

/// FR-FCFS restricted to entries matching `pred`; -1 when none match.
/// Shared by the priority-class schedulers (CPU-prio, DynPrio).
template <typename Pred>
[[nodiscard]] std::int64_t pick_frfcfs_filtered(
    const std::deque<DramQueueEntry>& queue, const BankView& banks, Cycle now,
    Cycle starvation_cap, Pred pred) {
  // Every return path requires a ready bank; skip the scan while none is.
  if (!banks.any_ready(now)) return -1;
  const DramQueueEntry* oldest = nullptr;
  const DramQueueEntry* cas = nullptr;       // issuable row hit
  const DramQueueEntry* activate = nullptr;  // conflict on a free bank
  for (const auto& e : queue) {
    if (!pred(e)) continue;
    if (oldest == nullptr) oldest = &e;
    const bool ready = banks.bank_ready_at(e.bank) <= now;
    if (!ready) continue;
    if (banks.is_row_hit(e.bank, e.row)) {
      cas = &e;
      break;  // oldest issuable row hit; `oldest` was set at or before it
    }
    if (activate == nullptr) activate = &e;
  }
  if (oldest == nullptr) return -1;
  if (now - oldest->arrival > starvation_cap &&
      banks.bank_ready_at(oldest->bank) <= now) {
    return static_cast<std::int64_t>(oldest->id);
  }
  const DramQueueEntry* chosen = cas != nullptr ? cas : activate;
  return chosen != nullptr ? static_cast<std::int64_t>(chosen->id) : -1;
}

}  // namespace gpuqos
