// Staged Memory Scheduler (Ausavarungnirun et al., ISCA 2012).
//
// Stage 1 (batch formation): per-source FIFOs group consecutive same-row
// requests into batches (closed on a row change, a size cap, or an age
// timeout). Stage 2 (batch scheduler): with probability p pick the shortest
// ready batch (favoring latency-sensitive CPU jobs), otherwise round-robin
// across sources (fairness for bandwidth-sensitive jobs). The paper
// evaluates SMS-0.9 and SMS-0.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "dram/scheduler.hpp"

namespace gpuqos {

class SmsScheduler : public IDramScheduler {
 public:
  struct Params {
    double shortest_first_prob = 0.9;  // p: 0.9 => SMS-0.9, 0 => SMS-0
    unsigned batch_cap = 16;
    Cycle batch_timeout = 240;  // close a forming batch after this age
  };

  SmsScheduler(Params params, Rng rng) : params_(params), rng_(rng) {}

  void on_enqueue(const DramQueueEntry& entry) override;
  [[nodiscard]] std::int64_t pick(const DramQueue& queue,
                                  const BankView& banks, Cycle now) override;
  void on_issue(const DramQueueEntry& entry) override;

  /// Checkpointing: the RNG and stage-2 cursors persist; batches reference
  /// queue-entry ids and are empty whenever the read queues are drained, so
  /// save() (which runs only at a drained barrier) verifies that instead of
  /// serializing them.
  [[nodiscard]] bool has_ckpt_state() const override { return true; }
  void save(ckpt::StateWriter& w) const override;
  void load(ckpt::StateReader& r) override;

  static constexpr unsigned kMaxSources = 5;  // up to 4 CPUs + GPU

 private:
  struct Batch {
    std::deque<std::uint64_t> ids;
    std::uint64_t last_row = 0;
    bool closed = false;
    Cycle opened_at = 0;
  };
  struct SourceState {
    std::deque<Batch> batches;  // front = oldest
  };

  [[nodiscard]] static unsigned source_index(const SourceId& s);
  void close_stale_batches(Cycle now);

  Params params_;  // ckpt:skip: construction parameter
  Rng rng_;
  // ckpt:skip: batches must be drained at the barrier (save() throws if any
  // source still holds one), so a loaded scheduler starts from empty state.
  std::array<SourceState, kMaxSources> sources_{};  // ckpt:skip
  int current_source_ = -1;  // batch currently being drained
  unsigned rr_pointer_ = 0;
};

}  // namespace gpuqos
