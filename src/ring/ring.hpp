// Bidirectional ring interconnect (Table I: single-cycle hop).
//
// Messages take the minimal-hop direction; each link carries one message per
// cycle per direction, modeled by per-link reservation times (a wormhole-like
// approximation that captures queueing without per-cycle ticking).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "check/auditors.hpp"
#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace gpuqos {

class CheckContext;
class Profiler;
class Telemetry;

class RingNetwork {
 public:
  /// Traffic class hint for the telemetry layer (ring messages are opaque
  /// closures, so the sender declares who the payload belongs to).
  enum class Traffic { Unknown, Cpu, Gpu };

  RingNetwork(Engine& engine, unsigned stops, const RingConfig& cfg,
              StatRegistry& stats);

  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }
  void set_profiler(Profiler* prof) { prof_ = prof; }

  /// While attached, every message delivery is counted so the ring auditor
  /// can prove delivered <= sent (no duplicated closures).
  void set_check(CheckContext* check) { check_ = check; }

  /// Deliver `fn` at the destination stop after ring transit. Takes the
  /// engine's inline callable directly so a message closure is materialized
  /// once at the call site and moved through to the event queue unwrapped.
  void send(unsigned from, unsigned to, Engine::Action fn,
            Traffic traffic = Traffic::Unknown);

  /// Minimal hop count between two stops.
  [[nodiscard]] unsigned hops(unsigned from, unsigned to) const;
  [[nodiscard]] unsigned num_stops() const { return stops_; }

  /// Snapshot for audit_ring. `horizon` bounds how far into the future a
  /// link may be reserved (0 = unchecked).
  [[nodiscard]] RingAuditView audit_view(Cycle horizon) const;

  /// FNV-1a digest of all per-link reservation times (the ring's only
  /// architectural state).
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint the link reservations (docs/CHECKPOINT.md). The sent/
  /// delivered audit counters restart at zero on restore — consistent,
  /// because a drained ring has no message in flight and the auditor only
  /// proves delivered <= sent going forward.
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  // Link i in direction 0 (clockwise) connects stop i -> (i+1) % stops_;
  // direction 1 is the reverse.
  Engine& engine_;
  unsigned stops_;  // digest:skip: topology, fixed at construction
  RingConfig cfg_;  // ckpt:skip digest:skip: construction parameter
  StatRegistry& stats_;
  Telemetry* telemetry_ = nullptr;
  Profiler* prof_ = nullptr;
  // Sampled-profiling decimation counter (obs/profiler.hpp).
  std::uint32_t prof_decim_ = 0;  // ckpt:skip digest:skip: host-side only
  CheckContext* check_ = nullptr;
  std::vector<Cycle> link_free_[2];
  // Restart-at-zero traffic counters: instrumentation, not simulation state
  // (forked replicas deliberately recount from zero, docs/CHECKPOINT.md).
  std::uint64_t msgs_sent_ = 0;       // ckpt:skip digest:skip
  std::uint64_t msgs_delivered_ = 0;  // ckpt:skip digest:skip
  std::uint64_t* st_messages_ = nullptr;
  std::uint64_t* st_hops_ = nullptr;  // activity counter (obs/counters.hpp)
  std::uint64_t* st_queue_cycles_ = nullptr;
  std::uint64_t* st_hop_cycles_ = nullptr;
};

}  // namespace gpuqos
