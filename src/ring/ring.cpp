#include "ring/ring.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/telemetry.hpp"

namespace gpuqos {

RingNetwork::RingNetwork(Engine& engine, unsigned stops, const RingConfig& cfg,
                         StatRegistry& stats)
    : engine_(engine), stops_(stops), cfg_(cfg), stats_(stats) {
  assert(stops >= 2);
  link_free_[0].assign(stops, 0);
  link_free_[1].assign(stops, 0);
  st_messages_ = stats_.counter_ptr("ring.messages");
  st_queue_cycles_ = stats_.counter_ptr("ring.queue_cycles");
  st_hop_cycles_ = stats_.counter_ptr("ring.hop_cycles");
}

unsigned RingNetwork::hops(unsigned from, unsigned to) const {
  const unsigned cw = (to + stops_ - from) % stops_;
  return std::min(cw, stops_ - cw);
}

void RingNetwork::send(unsigned from, unsigned to, std::function<void()> fn,
                       Traffic traffic) {
  assert(from < stops_ && to < stops_);
  if (from == to) {
    engine_.schedule(0, std::move(fn));
    return;
  }
  const unsigned cw = (to + stops_ - from) % stops_;
  const bool clockwise = cw <= stops_ - cw;
  const unsigned nhops = clockwise ? cw : stops_ - cw;
  auto& free = link_free_[clockwise ? 0 : 1];

  Cycle t = engine_.now();
  unsigned stop = from;
  for (unsigned h = 0; h < nhops; ++h) {
    const unsigned link = clockwise ? stop : (stop + stops_ - 1) % stops_;
    const Cycle depart = std::max(t, free[link]);
    *st_queue_cycles_ += depart - t;
    free[link] = depart + cfg_.hop_latency;
    t = depart + cfg_.hop_latency;
    stop = clockwise ? (stop + 1) % stops_ : (stop + stops_ - 1) % stops_;
  }
  ++*st_messages_;
  *st_hop_cycles_ += t - engine_.now();
  if (telemetry_ != nullptr && traffic != Traffic::Unknown) {
    telemetry_->record_latency(LatStage::RingHop, traffic == Traffic::Gpu,
                               t - engine_.now());
  }
  engine_.schedule(t - engine_.now(), std::move(fn));
}

}  // namespace gpuqos
