#include "ring/ring.hpp"

#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "check/digest.hpp"
#include "ckpt/state_io.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace gpuqos {

RingNetwork::RingNetwork(Engine& engine, unsigned stops, const RingConfig& cfg,
                         StatRegistry& stats)
    : engine_(engine), stops_(stops), cfg_(cfg), stats_(stats) {
  GPUQOS_CHECK(stops >= 2, "a ring needs at least 2 stops, got " << stops);
  link_free_[0].assign(stops, 0);
  link_free_[1].assign(stops, 0);
  st_messages_ = stats_.counter_ptr("ring.messages");
  st_hops_ = stats_.counter_ptr("ring.hops");
  st_queue_cycles_ = stats_.counter_ptr("ring.queue_cycles");
  st_hop_cycles_ = stats_.counter_ptr("ring.hop_cycles");
}

unsigned RingNetwork::hops(unsigned from, unsigned to) const {
  const unsigned cw = (to + stops_ - from) % stops_;
  return std::min(cw, stops_ - cw);
}

void RingNetwork::send(unsigned from, unsigned to, Engine::Action fn,
                       Traffic traffic) {
  if (Engine::deferring()) {
    // Parallel tick phase: the ring's link reservations, stats, and
    // telemetry are shared across domains (CPU cores and the GPU memory
    // interface both send), so the whole send re-dispatches at the cycle
    // barrier, where it runs in serial order on the main thread.
    Engine::defer_host([this, from, to, f = std::move(fn), traffic]() mutable {
      send(from, to, std::move(f), traffic);
    });
    return;
  }
  SampledProfScope<16> prof(prof_, ProfModule::Ring, prof_decim_);
  GPUQOS_CHECK(from < stops_ && to < stops_,
               "stop out of range: " << from << " -> " << to << " on a "
                                     << stops_ << "-stop ring");
  if (check_ != nullptr) {
    ++msgs_sent_;
    fn = [this, inner = std::move(fn)]() mutable {
      ++msgs_delivered_;
      inner();
    };
  }
  if (from == to) {
    engine_.schedule(0, std::move(fn));
    return;
  }
  const unsigned cw = (to + stops_ - from) % stops_;
  const bool clockwise = cw <= stops_ - cw;
  const unsigned nhops = clockwise ? cw : stops_ - cw;
  auto& free = link_free_[clockwise ? 0 : 1];

  Cycle t = engine_.now();
  unsigned stop = from;
  for (unsigned h = 0; h < nhops; ++h) {
    const unsigned link = clockwise ? stop : (stop + stops_ - 1) % stops_;
    const Cycle depart = std::max(t, free[link]);
    *st_queue_cycles_ += depart - t;
    free[link] = depart + cfg_.hop_latency;
    t = depart + cfg_.hop_latency;
    stop = clockwise ? (stop + 1) % stops_ : (stop + stops_ - 1) % stops_;
  }
  ++*st_messages_;
  *st_hops_ += nhops;
  *st_hop_cycles_ += t - engine_.now();
  if (telemetry_ != nullptr && traffic != Traffic::Unknown) {
    telemetry_->record_latency(LatStage::RingHop, traffic == Traffic::Gpu,
                               t - engine_.now());
  }
  engine_.schedule(t - engine_.now(), std::move(fn));
}

RingAuditView RingNetwork::audit_view(Cycle horizon) const {
  RingAuditView v;
  v.sent = msgs_sent_;
  v.delivered = msgs_delivered_;
  for (const auto& dir : link_free_) {
    for (Cycle c : dir) v.max_link_reserved = std::max(v.max_link_reserved, c);
  }
  v.now = engine_.now();
  v.horizon = horizon;
  return v;
}

std::uint64_t RingNetwork::digest() const {
  Fnv1a64 h;
  for (const auto& dir : link_free_) {
    for (Cycle c : dir) h.mix(c);
  }
  return h.value();
}

void RingNetwork::save(ckpt::StateWriter& w) const {
  w.u32(stops_);
  for (const auto& dir : link_free_) {
    for (Cycle c : dir) w.u64(c);
  }
}

void RingNetwork::load(ckpt::StateReader& r) {
  const std::uint32_t stops = r.u32();
  if (stops != stops_) r.fail("ring stop count mismatch");
  for (auto& dir : link_free_) {
    for (Cycle& c : dir) c = r.u64();
  }
}

}  // namespace gpuqos
