#include "obs/telemetry.hpp"

#include <sstream>

#include "common/jsonio.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace gpuqos {

const char* to_string(LatStage s) {
  switch (s) {
    case LatStage::RingHop: return "ring_hop";
    case LatStage::LlcLookup: return "llc_lookup";
    case LatStage::MshrWait: return "mshr_wait";
    case LatStage::DramQueue: return "dram_queue";
    case LatStage::DramService: return "dram_service";
    case LatStage::LlcMissRoundtrip: return "llc_miss_roundtrip";
  }
  return "?";
}

Telemetry::Telemetry(TelemetryOptions opts) : opts_(opts) {
  if (opts_.capture_profile) profiler_ = std::make_unique<Profiler>();
  if (opts_.capture_trace) {
    trace_.name_process("gpuqos simulation");
    trace_.name_thread(TraceWriter::kTidFrames, "GPU frames");
    trace_.name_thread(TraceWriter::kTidThrottle, "ATU throttle windows");
    trace_.name_thread(TraceWriter::kTidPrio, "DRAM CPU-priority mode");
    trace_.name_thread(TraceWriter::kTidControl, "QoS controller");
    trace_.name_thread(TraceWriter::kTidLog, "log");
  }
}

Telemetry::~Telemetry() = default;

std::string Telemetry::histograms_json() const {
  std::ostringstream os;
  os << "{";
  for (int s = 0; s < kNumLatStages; ++s) {
    if (s > 0) os << ",";
    os << "\"" << to_string(static_cast<LatStage>(s)) << "\":{\"cpu\":"
       << hist_[s][0].to_json() << ",\"gpu\":" << hist_[s][1].to_json() << "}";
  }
  os << "}";
  return os.str();
}

void Telemetry::on_frame_start(Cycle gpu_now) {
  frame_open_ = true;
  frame_start_gpu_ = gpu_now;
}

void Telemetry::on_frame_complete(Cycle gpu_now, std::uint64_t frame_index) {
  if (!frame_open_) return;
  frame_open_ = false;
  if (opts_.capture_trace) {
    std::ostringstream args;
    args << "\"frame\":" << frame_index
         << ",\"gpu_cycles\":" << (gpu_now - frame_start_gpu_);
    trace_.complete("frame " + std::to_string(frame_index),
                    TraceWriter::kTidFrames,
                    gpu_to_base_cycles(frame_start_gpu_),
                    gpu_to_base_cycles(gpu_now), args.str());
  }
}

void Telemetry::record_prediction(Cycle gpu_now, std::uint64_t frame,
                                  double predicted, double actual) {
  if (opts_.capture_journal) {
    journal_.record_prediction(gpu_now, frame, predicted, actual);
  }
  if (opts_.capture_trace) {
    trace_.counter("frpu.predicted_cycles", gpu_to_base_cycles(gpu_now),
                   predicted);
    trace_.counter("frpu.actual_cycles", gpu_to_base_cycles(gpu_now), actual);
  }
}

void Telemetry::record_relearn(Cycle gpu_now, std::uint64_t total_relearns) {
  if (opts_.capture_journal) journal_.record_relearn(gpu_now, total_relearns);
  if (opts_.capture_trace) {
    trace_.instant("frpu relearn", TraceWriter::kTidControl,
                   gpu_to_base_cycles(gpu_now));
  }
}

void Telemetry::on_qos_control(const QosControlRecord& rec) {
  const Cycle base_now = gpu_to_base_cycles(rec.gpu_now);

  if (opts_.capture_journal && rec.wg != last_wg_) {
    journal_.record_wg_change(rec.gpu_now, last_wg_, rec.wg, rec.ng, rec.cp,
                              rec.ct, rec.accesses);
  }
  if (opts_.capture_journal && rec.cpu_prio_boost != last_prio_) {
    journal_.record_prio_flip(rec.gpu_now, rec.cpu_prio_boost, rec.cp, rec.ct);
  }

  if (opts_.capture_trace) {
    if (rec.wg != last_wg_) trace_.counter("atu.wg", base_now, double(rec.wg));
    // Throttle-window span: open while WG > 0.
    if (rec.throttling && !throttle_open_) {
      throttle_open_ = true;
      throttle_start_gpu_ = rec.gpu_now;
    } else if (!rec.throttling && throttle_open_) {
      throttle_open_ = false;
      trace_.complete("throttling", TraceWriter::kTidThrottle,
                      gpu_to_base_cycles(throttle_start_gpu_), base_now);
    }
    // CPU-priority span.
    if (rec.cpu_prio_boost && !prio_open_) {
      prio_open_ = true;
      prio_start_gpu_ = rec.gpu_now;
    } else if (!rec.cpu_prio_boost && prio_open_) {
      prio_open_ = false;
      trace_.complete("cpu priority", TraceWriter::kTidPrio,
                      gpu_to_base_cycles(prio_start_gpu_), base_now);
    }
  }

  last_wg_ = rec.wg;
  last_prio_ = rec.cpu_prio_boost;
  last_control_ = rec;
  has_control_ = true;
}

void Telemetry::mark_phase(Cycle base_now, const std::string& label) {
  if (opts_.capture_trace) {
    trace_.instant(label, TraceWriter::kTidControl, base_now);
  }
  if (opts_.capture_journal) {
    journal_.mark(base_to_gpu_cycles(base_now), label);
  }
}

void Telemetry::finalize(Cycle base_now) {
  if (profiler_ != nullptr) profiler_->stop();
  if (!opts_.capture_trace) return;
  if (frame_open_) {
    frame_open_ = false;
    trace_.complete("frame (open)", TraceWriter::kTidFrames,
                    gpu_to_base_cycles(frame_start_gpu_), base_now);
  }
  if (throttle_open_) {
    throttle_open_ = false;
    trace_.complete("throttling", TraceWriter::kTidThrottle,
                    gpu_to_base_cycles(throttle_start_gpu_), base_now);
  }
  if (prio_open_) {
    prio_open_ = false;
    trace_.complete("cpu priority", TraceWriter::kTidPrio,
                    gpu_to_base_cycles(prio_start_gpu_), base_now);
  }
}

void Telemetry::capture_stats(const StatRegistry& stats) {
  stats_json_ = stats.to_json();
  counters_ = stats.counters();
}

void Telemetry::on_log(int level, Cycle base_now, const std::string& msg) {
  if (!opts_.capture_log || !opts_.capture_trace) return;
  std::ostringstream args;
  args << "\"level\":" << level << ",\"message\":\"" << json_escape(msg)
       << "\"";
  trace_.instant("log", TraceWriter::kTidLog, base_now, args.str());
}

}  // namespace gpuqos
