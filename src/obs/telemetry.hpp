// Telemetry hub: the single object the simulator is instrumented against.
//
// Components hold a raw `Telemetry*` that is null by default, so the
// instrumented hot paths cost one predictable branch when observability is
// disabled (no virtual dispatch, no allocation). When a run wants telemetry,
// the caller constructs a Telemetry, passes it to the runner (or calls
// HeteroCmp::attach_telemetry directly), and reads the collected histograms,
// time-series, Chrome trace, and QoS journal after the run.
#pragma once

#include <cstdint>
#include <string>

#include <map>
#include <memory>

#include "common/types.hpp"
#include "obs/histogram.hpp"
#include "obs/journal.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace gpuqos {

class StatRegistry;

/// Pipeline stages a request's life is decomposed into (per request class).
enum class LatStage : int {
  RingHop = 0,       // ring transit (queueing + hops), per message
  LlcLookup,         // port arbitration + tag lookup at the shared LLC
  MshrWait,          // LLC miss detection -> MSHR granted (deferred queue)
  DramQueue,         // channel enqueue -> CAS issue
  DramService,       // CAS issue -> data burst complete
  LlcMissRoundtrip,  // LLC miss detection -> fill/waiters woken
};
inline constexpr int kNumLatStages = 6;

[[nodiscard]] const char* to_string(LatStage s);

struct TelemetryOptions {
  Cycle sample_interval = 0;  // base cycles between samples; 0 = no sampler
  bool capture_trace = true;
  bool capture_journal = true;
  bool capture_histograms = true;
  bool capture_log = true;  // mirror GPUQOS_LOG lines into the trace
  // Host-time attribution (obs/profiler.hpp): off by default — the scopes
  // then cost one null check per module entry.
  bool capture_profile = false;
  Cycle prof_flush_interval = 0;  // base cycles between flushes; 0 = none
};

/// Snapshot of one governor control step (Fig. 6 inputs and outputs).
struct QosControlRecord {
  Cycle gpu_now = 0;
  bool predicting = false;
  double cp = 0.0;             // predicted cycles/frame
  double ct = 0.0;             // target cycles/frame
  std::uint64_t accesses = 0;  // learned LLC accesses/frame (A)
  Cycle wg = 0;
  unsigned ng = 0;
  bool throttling = false;
  bool cpu_prio_boost = false;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions opts = {});
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] const TelemetryOptions& options() const { return opts_; }

  // --- Hot path: stage latency histograms -------------------------------
  void record_latency(LatStage stage, bool gpu, std::uint64_t cycles) {
    if (opts_.capture_histograms) {
      hist_[static_cast<int>(stage)][gpu ? 1 : 0].record(cycles);
    }
  }
  [[nodiscard]] const LatencyHistogram& histogram(LatStage stage,
                                                 bool gpu) const {
    return hist_[static_cast<int>(stage)][gpu ? 1 : 0];
  }
  /// {"ring_hop":{"cpu":{...},"gpu":{...}}, ...}
  [[nodiscard]] std::string histograms_json() const;

  // --- Frame lifecycle (GPU-clock timestamps) ---------------------------
  void on_frame_start(Cycle gpu_now);
  void on_frame_complete(Cycle gpu_now, std::uint64_t frame_index);
  void record_prediction(Cycle gpu_now, std::uint64_t frame, double predicted,
                         double actual);
  void record_relearn(Cycle gpu_now, std::uint64_t total_relearns);

  // --- Governor hook (called once per control interval) -----------------
  void on_qos_control(const QosControlRecord& rec);

  // --- Run phases -------------------------------------------------------
  /// Instant trace event + journal mark (e.g. "measure_start"). Base cycles.
  void mark_phase(Cycle base_now, const std::string& label);
  /// Close any open spans; call once when the simulation ends.
  void finalize(Cycle base_now);

  /// Keep a JSON snapshot of the registry (the HeteroCmp that owns the
  /// registry dies with the run; the snapshot survives in the Telemetry),
  /// plus the raw counter map for the activity-counter export.
  void capture_stats(const StatRegistry& stats);
  [[nodiscard]] const std::string& stats_json() const { return stats_json_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const {
    return counters_;
  }

  /// A GPUQOS_LOG line routed through the telemetry sink (base cycles).
  void on_log(int level, Cycle base_now, const std::string& msg);

  [[nodiscard]] IntervalSampler& sampler() { return sampler_; }
  [[nodiscard]] const IntervalSampler& sampler() const { return sampler_; }
  [[nodiscard]] TraceWriter& trace() { return trace_; }
  [[nodiscard]] const TraceWriter& trace() const { return trace_; }
  [[nodiscard]] QosJournal& journal() { return journal_; }
  [[nodiscard]] const QosJournal& journal() const { return journal_; }
  /// Null unless options().capture_profile; modules scope against it.
  [[nodiscard]] Profiler* profiler() { return profiler_.get(); }
  [[nodiscard]] const Profiler* profiler() const { return profiler_.get(); }

 private:
  TelemetryOptions opts_;
  LatencyHistogram hist_[kNumLatStages][2];  // [stage][cpu=0, gpu=1]
  IntervalSampler sampler_;
  TraceWriter trace_;
  QosJournal journal_;
  std::unique_ptr<Profiler> profiler_;
  std::string stats_json_;
  std::map<std::string, std::uint64_t> counters_;

  // Open-span state.
  bool frame_open_ = false;
  Cycle frame_start_gpu_ = 0;
  bool throttle_open_ = false;
  Cycle throttle_start_gpu_ = 0;
  bool prio_open_ = false;
  Cycle prio_start_gpu_ = 0;
  Cycle last_wg_ = 0;
  bool last_prio_ = false;
  bool has_control_ = false;
  QosControlRecord last_control_;
};

}  // namespace gpuqos
