#include "obs/binlog.hpp"

#include <cstdio>
#include <cstring>
#include <ostream>
#include <set>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "common/jsonio.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"

namespace gpuqos {

const char* to_string(BinField t) {
  switch (t) {
    case BinField::U64: return "u64";
    case BinField::I64: return "i64";
    case BinField::F64: return "f64";
    case BinField::Str: return "str";
    case BinField::Bool: return "bool";
    case BinField::KvU64: return "kv_u64";
    case BinField::KvF64: return "kv_f64";
  }
  return "?";
}

namespace {

constexpr std::uint8_t kOpStreamDef = 0x01;
constexpr std::uint8_t kOpRow = 0x02;
constexpr std::uint8_t kOpDict = 0x03;

[[nodiscard]] std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1)) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace

// --- Writer ---------------------------------------------------------------

void BinLogWriter::varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void BinLogWriter::raw_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void BinLogWriter::raw_str(std::vector<std::uint8_t>& out,
                           const std::string& s) {
  varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::uint32_t BinLogWriter::intern(const std::string& name) {
  auto it = dict_.find(name);
  if (it != dict_.end()) return it->second;
  const auto idx = checked_narrow<std::uint32_t>(dict_.size());
  dict_.emplace(name, idx);
  buf_.push_back(kOpDict);  // dict entries go straight to buf_, ahead of the
  varint(buf_, idx);        // in-flight row buffered in row_buf_
  raw_str(buf_, name);
  return idx;
}

std::uint32_t BinLogWriter::define_stream(const std::string& name,
                                          std::vector<BinFieldDef> fields) {
  GPUQOS_CHECK(cur_ == nullptr, "define_stream inside an open row");
  for (const BinStreamDef& s : streams_) {
    GPUQOS_CHECK(s.name != name, "duplicate binlog stream " << name);
  }
  BinStreamDef def;
  def.id = checked_narrow<std::uint32_t>(streams_.size());
  def.name = name;
  def.fields = std::move(fields);
  buf_.push_back(kOpStreamDef);
  varint(buf_, def.id);
  raw_str(buf_, def.name);
  varint(buf_, def.fields.size());
  for (const BinFieldDef& f : def.fields) {
    raw_str(buf_, f.name);
    buf_.push_back(static_cast<std::uint8_t>(f.type));
  }
  streams_.push_back(std::move(def));
  return streams_.back().id;
}

void BinLogWriter::begin_row(std::uint32_t stream_id) {
  GPUQOS_CHECK(cur_ == nullptr, "begin_row inside an open row");
  GPUQOS_CHECK(stream_id < streams_.size(),
               "unknown binlog stream id " << stream_id);
  cur_ = &streams_[stream_id];
  cur_field_ = 0;
  row_buf_.clear();
}

const BinFieldDef& BinLogWriter::expect_field(BinField t) {
  GPUQOS_CHECK(cur_ != nullptr, "binlog value outside a row");
  GPUQOS_CHECK(cur_field_ < cur_->fields.size(),
               "too many values for binlog stream " << cur_->name);
  const BinFieldDef& f = cur_->fields[cur_field_++];
  GPUQOS_CHECK(f.type == t, "binlog field " << cur_->name << "." << f.name
                                            << " expects " << to_string(f.type)
                                            << ", got " << to_string(t));
  return f;
}

void BinLogWriter::u64(std::uint64_t v) {
  expect_field(BinField::U64);
  varint(row_buf_, v);
}

void BinLogWriter::i64(std::int64_t v) {
  expect_field(BinField::I64);
  varint(row_buf_, zigzag(v));
}

void BinLogWriter::f64(double v) {
  expect_field(BinField::F64);
  raw_f64(row_buf_, v);
}

void BinLogWriter::str(const std::string& v) {
  expect_field(BinField::Str);
  raw_str(row_buf_, v);
}

void BinLogWriter::boolean(bool v) {
  expect_field(BinField::Bool);
  row_buf_.push_back(v ? 1 : 0);
}

void BinLogWriter::kv_u64(const std::map<std::string, std::uint64_t>& kv) {
  expect_field(BinField::KvU64);
  varint(row_buf_, kv.size());
  for (const auto& [k, v] : kv) {
    varint(row_buf_, intern(k));
    varint(row_buf_, v);
  }
}

void BinLogWriter::kv_f64(const std::map<std::string, double>& kv) {
  expect_field(BinField::KvF64);
  varint(row_buf_, kv.size());
  for (const auto& [k, v] : kv) {
    varint(row_buf_, intern(k));
    raw_f64(row_buf_, v);
  }
}

void BinLogWriter::end_row() {
  GPUQOS_CHECK(cur_ != nullptr, "end_row without begin_row");
  GPUQOS_CHECK(cur_field_ == cur_->fields.size(),
               "row for " << cur_->name << " has " << cur_field_ << " of "
                          << cur_->fields.size() << " values");
  buf_.push_back(kOpRow);
  varint(buf_, cur_->id);
  buf_.insert(buf_.end(), row_buf_.begin(), row_buf_.end());
  cur_ = nullptr;
  ++rows_;
}

const std::vector<std::uint8_t>& BinLogWriter::bytes() const {
  GPUQOS_CHECK(cur_ == nullptr, "bytes() inside an open row");
  return buf_;
}

bool BinLogWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t>& b = bytes();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    GPUQOS_LOG(Error, "binlog: cannot open " << path << " for writing");
    return false;
  }
  const std::size_t written = std::fwrite(b.data(), 1, b.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != b.size() || !closed) {
    GPUQOS_LOG(Error, "binlog: short write to " << path << " (" << written
                                                << "/" << b.size()
                                                << " bytes; disk full?)");
    return false;
  }
  return true;
}

// --- Reader ---------------------------------------------------------------

BinLogReader::BinLogReader(std::vector<std::uint8_t> bytes)
    : buf_(std::move(bytes)) {
  if (buf_.size() < 5 || buf_[0] != 'G' || buf_[1] != 'Q' || buf_[2] != 'B' ||
      buf_[3] != 'L') {
    fail("not a binlog file (bad magic)");
  }
  if (buf_[4] != 1) {
    fail("unsupported binlog version " + std::to_string(buf_[4]));
  }
  pos_ = 5;
}

void BinLogReader::fail(const std::string& what) const {
  throw BinLogError("binlog at byte " + std::to_string(pos_) + ": " + what);
}

std::uint8_t BinLogReader::byte() {
  if (pos_ >= buf_.size()) fail("truncated record");
  return buf_[pos_++];
}

std::uint64_t BinLogReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = byte();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  fail("varint longer than 64 bits");
}

double BinLogReader::raw_f64() {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(byte()) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinLogReader::raw_str() {
  const std::uint64_t len = varint();
  if (len > buf_.size() - pos_) fail("truncated string");
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

bool BinLogReader::next(BinRow& row) {
  while (pos_ < buf_.size()) {
    const std::uint8_t op = byte();
    switch (op) {
      case kOpStreamDef: {
        BinStreamDef def;
        def.id = static_cast<std::uint32_t>(varint());
        if (def.id != streams_.size()) fail("non-sequential stream id");
        def.name = raw_str();
        const std::uint64_t n = varint();
        for (std::uint64_t i = 0; i < n; ++i) {
          BinFieldDef f;
          f.name = raw_str();
          const std::uint8_t t = byte();
          if (t > static_cast<std::uint8_t>(BinField::KvF64)) {
            fail("unknown field type " + std::to_string(t));
          }
          f.type = static_cast<BinField>(t);
          def.fields.push_back(std::move(f));
        }
        streams_.push_back(std::move(def));
        break;
      }
      case kOpDict: {
        const std::uint64_t idx = varint();
        if (idx != dict_.size()) fail("non-sequential dict index");
        dict_.push_back(raw_str());
        break;
      }
      case kOpRow: {
        const std::uint64_t id = varint();
        if (id >= streams_.size()) fail("row for undefined stream");
        row.def = &streams_[static_cast<std::size_t>(id)];
        row.values.clear();
        for (const BinFieldDef& f : row.def->fields) {
          BinValue v;
          v.type = f.type;
          switch (f.type) {
            case BinField::U64: v.u = varint(); break;
            case BinField::I64: v.i = unzigzag(varint()); break;
            case BinField::F64: v.d = raw_f64(); break;
            case BinField::Str: v.s = raw_str(); break;
            case BinField::Bool: v.u = byte() != 0 ? 1 : 0; break;
            case BinField::KvU64: {
              const std::uint64_t n = varint();
              for (std::uint64_t i = 0; i < n; ++i) {
                const std::uint64_t idx = varint();
                if (idx >= dict_.size()) fail("bad dict index");
                v.kv_u.emplace_back(dict_[static_cast<std::size_t>(idx)],
                                    varint());
              }
              break;
            }
            case BinField::KvF64: {
              const std::uint64_t n = varint();
              for (std::uint64_t i = 0; i < n; ++i) {
                const std::uint64_t idx = varint();
                if (idx >= dict_.size()) fail("bad dict index");
                v.kv_d.emplace_back(dict_[static_cast<std::size_t>(idx)],
                                    raw_f64());
              }
              break;
            }
          }
          row.values.push_back(std::move(v));
        }
        return true;
      }
      default:
        fail("unknown opcode " + std::to_string(op));
    }
  }
  return false;
}

std::vector<std::uint8_t> BinLogReader::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw BinLogError("binlog: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw BinLogError("binlog: read error on " + path);
  return bytes;
}

// --- Converters -----------------------------------------------------------

bool binlog_stream_matches(const std::string& selector,
                           const std::string& stream_name) {
  if (selector.empty() || selector == stream_name) return true;
  return stream_name.size() > selector.size() &&
         stream_name.compare(0, selector.size(), selector) == 0 &&
         stream_name[selector.size()] == '.';
}

namespace {

void render_value_json(std::ostream& os, const BinValue& v) {
  switch (v.type) {
    case BinField::U64: os << v.u; break;
    case BinField::I64: os << v.i; break;
    case BinField::F64: os << json_double(v.d); break;
    case BinField::Str: os << "\"" << json_escape(v.s) << "\""; break;
    case BinField::Bool: os << (v.u != 0 ? "true" : "false"); break;
    case BinField::KvU64: {
      os << "{";
      bool first = true;
      for (const auto& [k, val] : v.kv_u) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(k) << "\":" << val;
      }
      os << "}";
      break;
    }
    case BinField::KvF64: {
      os << "{";
      bool first = true;
      for (const auto& [k, val] : v.kv_d) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(k) << "\":" << json_double(val);
      }
      os << "}";
      break;
    }
  }
}

}  // namespace

void binlog_to_jsonl(BinLogReader& reader, const std::string& selector,
                     std::ostream& os) {
  BinRow row;
  while (reader.next(row)) {
    if (!binlog_stream_matches(selector, row.def->name)) continue;
    os << "{";
    for (std::size_t i = 0; i < row.values.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << json_escape(row.def->fields[i].name) << "\":";
      render_value_json(os, row.values[i]);
    }
    os << "}\n";
  }
}

void binlog_to_csv(BinLogReader& reader, const std::string& selector,
                   std::ostream& os) {
  // Two passes over the rows (they must all be decoded anyway to find the
  // union of Kv keys, exactly like IntervalSampler::write_csv).
  std::vector<BinRow> rows;
  const BinStreamDef* def = nullptr;
  BinRow row;
  while (reader.next(row)) {
    if (!binlog_stream_matches(selector, row.def->name)) continue;
    if (def == nullptr) def = row.def;
    if (row.def != def) {
      throw BinLogError("csv: selector '" + selector +
                        "' matches multiple streams (" + def->name + ", " +
                        row.def->name + "); pick one");
    }
    rows.push_back(row);
  }
  if (def == nullptr) return;
  // Header: scalar fields become columns; Kv fields expand to their key
  // union in sorted order (kv pairs come from std::map, already sorted).
  std::vector<std::set<std::string>> kv_keys(def->fields.size());
  for (const BinRow& r : rows) {
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      for (const auto& [k, _] : r.values[i].kv_u) kv_keys[i].insert(k);
      for (const auto& [k, _] : r.values[i].kv_d) kv_keys[i].insert(k);
    }
  }
  bool first = true;
  for (std::size_t i = 0; i < def->fields.size(); ++i) {
    const BinField t = def->fields[i].type;
    if (t == BinField::KvU64 || t == BinField::KvF64) {
      for (const std::string& k : kv_keys[i]) {
        os << (first ? "" : ",") << k;
        first = false;
      }
    } else {
      os << (first ? "" : ",") << def->fields[i].name;
      first = false;
    }
  }
  os << "\n";
  for (const BinRow& r : rows) {
    first = true;
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      const BinValue& v = r.values[i];
      if (v.type == BinField::KvU64) {
        std::map<std::string, std::uint64_t> m(v.kv_u.begin(), v.kv_u.end());
        for (const std::string& k : kv_keys[i]) {
          auto it = m.find(k);
          os << (first ? "" : ",") << (it == m.end() ? 0 : it->second);
          first = false;
        }
      } else if (v.type == BinField::KvF64) {
        std::map<std::string, double> m(v.kv_d.begin(), v.kv_d.end());
        for (const std::string& k : kv_keys[i]) {
          auto it = m.find(k);
          os << (first ? "" : ",")
             << json_double(it == m.end() ? 0.0 : it->second);
          first = false;
        }
      } else {
        if (!first) os << ",";
        first = false;
        if (v.type == BinField::Str) {
          os << json_escape(v.s);
        } else {
          render_value_json(os, v);
        }
      }
    }
    os << "\n";
  }
}

void binlog_to_chrome_trace(BinLogReader& reader, std::ostream& os) {
  // Reconstruct TraceWriter events and reuse its renderer so the output is
  // byte-identical to a natively written trace.
  TraceWriter::render_prelude(os);
  bool first = true;
  BinRow row;
  while (reader.next(row)) {
    if (row.def->name != "trace") continue;
    if (row.values.size() != 7) {
      throw BinLogError("trace stream has unexpected shape");
    }
    TraceWriter::Event e;
    e.name = row.values[0].s;
    e.ph = row.values[1].s.empty() ? 'X' : row.values[1].s[0];
    e.ts = row.values[2].u;
    e.dur = row.values[3].u;
    e.tid = static_cast<int>(row.values[4].u);
    e.args = row.values[5].s;
    e.value = row.values[6].d;
    TraceWriter::render_event(os, e, first);
    first = false;
  }
  TraceWriter::render_epilogue(os);
}

void binlog_list(BinLogReader& reader, std::ostream& os) {
  // Keyed by pointer for lookup only (stream defs register lazily during
  // next(), so a pre-built index would miss later streams). Listing order
  // comes from streams(), never from iterating this map — an *ordered*
  // ptr-keyed map here would tie output order to allocation addresses.
  std::unordered_map<const BinStreamDef*, std::uint64_t> counts;
  BinRow row;
  while (reader.next(row)) ++counts[row.def];
  for (const BinStreamDef& def : reader.streams()) {
    const auto it = counts.find(&def);
    const std::uint64_t n = it == counts.end() ? 0 : it->second;
    os << def.name << ": " << n << " rows, " << def.fields.size()
       << " fields (";
    for (std::size_t i = 0; i < def.fields.size(); ++i) {
      os << (i > 0 ? " " : "") << def.fields[i].name << ":"
         << to_string(def.fields[i].type);
    }
    os << ")\n";
  }
}

}  // namespace gpuqos
