#include "obs/counters.hpp"

#include <sstream>

#include "common/config.hpp"
#include "common/jsonio.hpp"
#include "obs/binlog.hpp"

namespace gpuqos {

ActivityCounterBank::ActivityCounterBank(unsigned cpu_cores,
                                         unsigned dram_channels) {
  for (unsigned c = 0; c < dram_channels; ++c) {
    const std::string ch = "ch" + std::to_string(c) + ".";
    add("dram", ch + "act");
    add("dram", ch + "pre");
    add("dram", ch + "rd");
    add("dram", ch + "wr");
  }
  add("llc", "access.cpu");
  add("llc", "access.gpu");
  add("llc", "fills");
  add("llc", "writebacks");
  add("llc", "mshr_allocations");
  add("llc", "mshr_coalesced");
  add("ring", "messages");
  add("ring", "hops");
  add("gpu", "fragments");
  add("gpu", "tiles_retired");
  add("gpu", "llc_accesses");
  add("qos", "atu_token_grants");
  add("qos", "atu_token_denials");
  for (unsigned i = 0; i < cpu_cores; ++i) {
    const std::string core = "cpu" + std::to_string(i);
    catalog_.push_back({core + ".committed_instrs", core, "committed_instrs"});
    catalog_.push_back({core + ".llc_reads", core, "llc_reads"});
    catalog_.push_back({core + ".llc_writes", core, "llc_writes"});
  }
}

void ActivityCounterBank::add(const std::string& module,
                              const std::string& event) {
  catalog_.push_back({module + "." + event, module, event});
}

ActivityCounterBank ActivityCounterBank::for_config(const SimConfig& cfg) {
  return ActivityCounterBank(cfg.cpu_cores, cfg.dram.channels);
}

std::string ActivityCounterBank::schema_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"modules\":{";
  bool first_module = true;
  std::string cur;
  for (const ActivityCounter& c : catalog_) {
    if (c.module != cur) {
      if (!cur.empty()) os << "],";
      os << (first_module ? "" : "") << "\"" << json_escape(c.module)
         << "\":[";
      first_module = false;
      cur = c.module;
    } else {
      os << ",";
    }
    os << "{\"event\":\"" << json_escape(c.event) << "\",\"stat\":\""
       << json_escape(c.stat) << "\"}";
  }
  if (!cur.empty()) os << "]";
  os << "}}";
  return os.str();
}

std::string ActivityCounterBank::values_json(
    const std::map<std::string, std::uint64_t>& counters) const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"counters\":{";
  bool first = true;
  for (const ActivityCounter& c : catalog_) {
    auto it = counters.find(c.stat);
    os << (first ? "" : ",") << "\"" << json_escape(c.stat)
       << "\":" << (it == counters.end() ? 0 : it->second);
    first = false;
  }
  os << "}}";
  return os.str();
}

void ActivityCounterBank::write_binlog(
    BinLogWriter& w,
    const std::map<std::string, std::uint64_t>& counters) const {
  const std::uint32_t id =
      w.define_stream("counters", {{"stat", BinField::Str},
                                   {"module", BinField::Str},
                                   {"event", BinField::Str},
                                   {"value", BinField::U64}});
  for (const ActivityCounter& c : catalog_) {
    auto it = counters.find(c.stat);
    w.begin_row(id);
    w.str(c.stat);
    w.str(c.module);
    w.str(c.event);
    w.u64(it == counters.end() ? 0 : it->second);
    w.end_row();
  }
}

}  // namespace gpuqos
