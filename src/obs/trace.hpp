// Chrome trace-event JSON writer (Perfetto / chrome://tracing loadable).
//
// Events accumulate in memory and are serialized once at end of run with
// write(). Timestamps are simulation base cycles converted to microseconds of
// simulated time (4 GHz base clock), so span widths in the viewer correspond
// to simulated wall-clock time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gpuqos {

class BinLogWriter;

class TraceWriter {
 public:
  struct Event {
    std::string name;
    char ph = 'X';
    Cycle ts = 0;
    Cycle dur = 0;       // complete events only
    int tid = 0;
    std::string args;    // raw JSON object body, may be empty
    double value = 0.0;  // counter events only
  };

  /// Track ids used by the telemetry layer (thread rows in the viewer).
  static constexpr int kTidFrames = 1;    // GPU frame spans
  static constexpr int kTidThrottle = 2;  // ATU throttle windows
  static constexpr int kTidPrio = 3;      // DRAM CPU-priority mode
  static constexpr int kTidControl = 4;   // governor markers / counters
  static constexpr int kTidLog = 5;       // GPUQOS_LOG messages

  /// Complete event ("ph":"X") spanning [start, end] base cycles.
  /// `args_json` is a raw JSON object body ("\"k\":1") or empty.
  void complete(const std::string& name, int tid, Cycle start, Cycle end,
                const std::string& args_json = "");

  /// Instant event ("ph":"i").
  void instant(const std::string& name, int tid, Cycle at,
               const std::string& args_json = "");

  /// Counter event ("ph":"C"): one series `name` with value `value`.
  void counter(const std::string& name, Cycle at, double value);

  /// Metadata: name the process / a thread row.
  void name_process(const std::string& name);
  void name_thread(int tid, const std::string& name);

  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Serialize as {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void write(std::ostream& os) const;

  /// Append every event to the "trace" stream of a binlog (obs/binlog.hpp);
  /// binlog_to_chrome_trace() reconstructs an identical document.
  void write_binlog(BinLogWriter& w) const;

  // Single rendering path, shared with the binlog decoder so a decoded trace
  // is byte-identical to a natively written one.
  static void render_prelude(std::ostream& os);
  static void render_event(std::ostream& os, const Event& e, bool first);
  static void render_epilogue(std::ostream& os);

 private:
  std::vector<Event> events_;
};

}  // namespace gpuqos
