// Interval time-series sampler over a StatRegistry.
//
// Registered as an Engine ticker (see HeteroCmp::attach_telemetry): every N
// base cycles it snapshots the registry, records the per-counter delta since
// the previous snapshot, and evaluates a set of gauge callbacks (instantaneous
// values such as the ATU window WG or the predicted FPS). The in-memory
// series streams to JSONL (one object per interval) or CSV.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace gpuqos {

class BinLogWriter;

class IntervalSampler {
 public:
  struct Sample {
    Cycle cycle = 0;      // base-cycle timestamp of the snapshot
    Cycle dt = 0;         // cycles since the previous snapshot (or rebase)
    std::map<std::string, std::uint64_t> deltas;  // non-zero counter deltas
    std::map<std::string, double> gauges;
  };

  using GaugeFn = std::function<double()>;

  /// Bind the registry to sample. Until bound, rebase()/sample() are no-ops
  /// (an unbound sampler is simply disabled).
  void bind(const StatRegistry* stats) { stats_ = stats; }

  /// Register a named gauge evaluated at every sample point.
  void add_gauge(const std::string& name, GaugeFn fn);

  /// Reset the delta baseline to the registry's current values without
  /// recording a sample (used at the warm-up/measurement boundary so the
  /// first measured interval excludes warm-up activity).
  void rebase(Cycle now);

  /// Take one sample: counter deltas since the last snapshot plus gauges.
  void sample(Cycle now);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  /// One JSON object per line:
  /// {"cycle":N,"dt":N,"counters":{...},"gauges":{...}}
  void write_jsonl(std::ostream& os) const;

  /// Header row (cycle, dt, union of counter and gauge keys), then one row
  /// per sample; absent counters render as 0.
  void write_csv(std::ostream& os) const;

  /// Append the series to the "samples" stream of a binlog (obs/binlog.hpp):
  /// one row per sample, counter/gauge names deduplicated through the file
  /// dictionary. `obs_cat` converts it back to the write_jsonl/write_csv
  /// output byte-for-byte.
  void write_binlog(BinLogWriter& w) const;

 private:
  const StatRegistry* stats_ = nullptr;
  std::vector<std::pair<std::string, GaugeFn>> gauges_;
  std::map<std::string, std::uint64_t> baseline_;
  Cycle last_cycle_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace gpuqos
