#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/jsonio.hpp"

namespace gpuqos {
namespace {

unsigned bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  const unsigned b = static_cast<unsigned>(std::bit_width(v));
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::record(std::uint64_t value) {
  ++buckets_[bucket_of(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double LatencyHistogram::mean() const {
  return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                    : 0.0;
}

std::uint64_t LatencyHistogram::bucket_lo(unsigned b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t LatencyHistogram::bucket_hi(unsigned b) {
  return b == 0 ? 1 : std::uint64_t{1} << b;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t before = cum;
    cum += buckets_[b];
    if (rank > static_cast<double>(cum)) continue;
    const double frac =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets_[b]);
    const double lo = static_cast<double>(bucket_lo(b));
    // The overflow bucket has no upper bound; interpolate to the max seen.
    const double hi = b == kBuckets - 1 ? static_cast<double>(max_)
                                        : static_cast<double>(bucket_hi(b));
    const double v = lo + frac * (hi - lo);
    return std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
  }
  return static_cast<double>(max_);
}

void LatencyHistogram::clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::string LatencyHistogram::to_json() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"mean\":" << json_double(mean())
     << ",\"min\":" << min() << ",\"max\":" << max_
     << ",\"p50\":" << json_double(percentile(50))
     << ",\"p90\":" << json_double(percentile(90))
     << ",\"p99\":" << json_double(percentile(99)) << "}";
  return os.str();
}

}  // namespace gpuqos
