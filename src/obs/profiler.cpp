#include "obs/profiler.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "check/check.hpp"
#include "common/jsonio.hpp"
#include "obs/binlog.hpp"

namespace gpuqos {

const char* to_string(ProfModule m) {
  switch (m) {
    case ProfModule::CpuCore: return "cpu_core";
    case ProfModule::GpuPipeline: return "gpu_pipeline";
    case ProfModule::GpuMem: return "gpu_mem";
    case ProfModule::Llc: return "llc";
    case ProfModule::Ring: return "ring";
    case ProfModule::Dram: return "dram";
    case ProfModule::Governor: return "governor";
    case ProfModule::Ckpt: return "ckpt";
    case ProfModule::Engine: return "engine";
  }
  return "?";
}

const char* to_string(ProfPhase p) {
  return p == ProfPhase::Warm ? "warm" : "measure";
}

void Profiler::start() {
  if (running_) return;
  running_ = true;
  run_start_ticks_ = now_ticks();
  /*det:ok: host-side instrumentation, wall time never feeds simulated state*/
  wall_start_ = std::chrono::steady_clock::now();
}

void Profiler::stop() {
  if (!running_ || stopped_) return;
  stopped_ = true;
  running_ = false;
  run_ticks_ += now_ticks() - run_start_ticks_;
  wall_seconds_ +=
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() /*det:ok: host-side
              instrumentation, wall time never feeds simulated state*/
          - wall_start_)
          .count();
}

namespace {
// Lane index of the calling thread; lane 0 (main) unless the engine's
// worker-init hook selected another via set_thread_lane().
// NOLINT-gpuqos(thread-purity): audited — per-thread lane selector that
// *partitions* profiler state between threads instead of sharing it, and a
// pool worker inherits the default main lane for its own Profiler instance.
thread_local int t_prof_lane = 0;
}  // namespace

void Profiler::set_thread_lane(int lane) {
  t_prof_lane = lane < 0 ? 0 : (lane >= kMaxLanes ? kMaxLanes - 1 : lane);
}

Profiler::Lane& Profiler::this_lane() { return lanes_[t_prof_lane]; }

void Profiler::enter(ProfModule m, std::uint32_t scale) {
  Lane& lane = this_lane();
  GPUQOS_CHECK(lane.depth < kMaxDepth, "profiler scope depth exceeds "
                                           << kMaxDepth << " entering "
                                           << to_string(m));
  Frame& f = lane.stack[lane.depth++];
  f.m = m;
  f.child = 0;
  f.scale = scale;
  f.start = now_ticks();
}

void Profiler::leave() {
  Lane& lane = this_lane();
  GPUQOS_CHECK(lane.depth > 0, "profiler leave() without enter()");
  const Frame& f = lane.stack[--lane.depth];
  const std::uint64_t elapsed = now_ticks() - f.start;
  const std::uint64_t self = elapsed > f.child ? elapsed - f.child : 0;
  Slot& s = lane.slots[static_cast<int>(phase_)][static_cast<int>(f.m)];
  s.self_ticks += self * f.scale;
  s.entries += f.scale;
  // The parent sees the *real* elapsed time: extrapolation only scales this
  // module's attribution, never the enclosing frame's bookkeeping.
  if (lane.depth > 0) lane.stack[lane.depth - 1].child += elapsed;
}

Profiler::Slot Profiler::slot(ProfPhase p, ProfModule m) const {
  Slot out;
  for (const Lane& lane : lanes_) {
    const Slot& s = lane.slots[static_cast<int>(p)][static_cast<int>(m)];
    out.self_ticks += s.self_ticks;
    out.entries += s.entries;
  }
  return out;
}

void Profiler::flush(Cycle now) {
  FlushRecord rec;
  rec.cycle = now;
  for (int m = 0; m < kNumProfModules; ++m) {
    std::uint64_t cum = 0;
    for (int p = 0; p < kNumProfPhases; ++p) {
      cum += slot(static_cast<ProfPhase>(p), static_cast<ProfModule>(m))
                 .self_ticks;
    }
    rec.self_ticks[static_cast<std::size_t>(m)] = cum;
  }
  flushes_.push_back(rec);
}

void Profiler::merge(const Profiler& other) {
  for (int l = 0; l < kMaxLanes; ++l) {
    for (int p = 0; p < kNumProfPhases; ++p) {
      for (int m = 0; m < kNumProfModules; ++m) {
        lanes_[l].slots[p][m].self_ticks += other.lanes_[l].slots[p][m].self_ticks;
        lanes_[l].slots[p][m].entries += other.lanes_[l].slots[p][m].entries;
      }
    }
  }
  std::uint64_t other_ticks = other.run_ticks_;
  if (other.running_) other_ticks += now_ticks() - other.run_start_ticks_;
  run_ticks_ += other_ticks;
  wall_seconds_ += other.wall_seconds_;
  flushes_.insert(flushes_.end(), other.flushes_.begin(),
                  other.flushes_.end());
}

std::uint64_t Profiler::total_ticks() const {
  std::uint64_t t = run_ticks_;
  if (running_) t += now_ticks() - run_start_ticks_;
  // The run window can never under-report the scoped time (a scope that
  // straddles start() could); clamp so the residual stays non-negative.
  return std::max(t, attributed_ticks());
}

std::uint64_t Profiler::attributed_ticks() const {
  std::uint64_t t = 0;
  for (const Lane& lane : lanes_) {
    for (int p = 0; p < kNumProfPhases; ++p) {
      for (int m = 0; m < kNumProfModules; ++m) {
        t += lane.slots[p][m].self_ticks;
      }
    }
  }
  return t;
}

double Profiler::wall_seconds() const {
  if (running_) {
    return wall_seconds_ + std::chrono::duration<double>(
                               /*det:ok: host-side instrumentation*/
                               std::chrono::steady_clock::now() - wall_start_)
                               .count();
  }
  return wall_seconds_;
}

std::string Profiler::table() const {
  const std::uint64_t total = total_ticks();
  const double secs = wall_seconds();
  const double per_tick = total > 0 ? secs / static_cast<double>(total) : 0.0;
  std::ostringstream os;
  os << "host-time attribution (" << std::fixed << std::setprecision(3)
     << secs << " s";
#if defined(__x86_64__) || defined(_M_X64)
  os << ", rdtsc";
#else
  os << ", steady_clock";
#endif
  os << ")\n";
  os << "  module        warm%  measure%   total%   seconds     entries\n";
  for (int m = 0; m < kNumProfModules; ++m) {
    std::uint64_t self = 0;
    std::uint64_t entries = 0;
    std::array<std::uint64_t, kNumProfPhases> by_phase{};
    if (m == static_cast<int>(ProfModule::Engine)) {
      // Residual row: everything not inside a scope. Phase split follows
      // the scoped ticks' split (the residual itself is not phase-stamped).
      self = total - attributed_ticks();
      by_phase[0] = self;  // reported under total%; warm/measure left 0
    } else {
      for (int p = 0; p < kNumProfPhases; ++p) {
        const Slot s =
            slot(static_cast<ProfPhase>(p), static_cast<ProfModule>(m));
        by_phase[static_cast<std::size_t>(p)] = s.self_ticks;
        self += s.self_ticks;
        entries += s.entries;
      }
    }
    const auto pct = [&](std::uint64_t t) {
      return total > 0 ? 100.0 * static_cast<double>(t) /
                             static_cast<double>(total)
                       : 0.0;
    };
    os << "  " << std::left << std::setw(12) << to_string(
                                                    static_cast<ProfModule>(m))
       << std::right << std::setw(7) << std::setprecision(2)
       << (m == static_cast<int>(ProfModule::Engine) ? 0.0 : pct(by_phase[0]))
       << std::setw(10) << pct(by_phase[1]) << std::setw(9) << pct(self)
       << std::setw(10) << std::setprecision(3)
       << static_cast<double>(self) * per_tick << std::setw(12) << entries
       << "\n";
  }
  return os.str();
}

std::string Profiler::to_json() const {
  const std::uint64_t total = total_ticks();
  std::ostringstream os;
  os << "{\"total_ticks\":" << total
     << ",\"attributed_ticks\":" << attributed_ticks()
     << ",\"wall_seconds\":" << json_double(wall_seconds())
     << ",\"modules\":{";
  bool first = true;
  for (int m = 0; m < kNumProfModules; ++m) {
    if (m == static_cast<int>(ProfModule::Engine)) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << to_string(static_cast<ProfModule>(m)) << "\":{";
    for (int p = 0; p < kNumProfPhases; ++p) {
      const Slot s =
          slot(static_cast<ProfPhase>(p), static_cast<ProfModule>(m));
      os << (p > 0 ? "," : "") << "\"" << to_string(static_cast<ProfPhase>(p))
         << "\":{\"self_ticks\":" << s.self_ticks
         << ",\"entries\":" << s.entries << "}";
    }
    os << "}";
  }
  os << "},\"engine_residual_ticks\":" << (total - attributed_ticks())
     << ",\"flushes\":" << flushes_.size() << "}";
  return os.str();
}

void Profiler::write_binlog(BinLogWriter& w) const {
  const std::uint32_t prof_id =
      w.define_stream("prof", {{"phase", BinField::Str},
                               {"module", BinField::Str},
                               {"self_ticks", BinField::U64},
                               {"entries", BinField::U64}});
  for (int p = 0; p < kNumProfPhases; ++p) {
    for (int m = 0; m < kNumProfModules; ++m) {
      if (m == static_cast<int>(ProfModule::Engine)) continue;
      const Slot s =
          slot(static_cast<ProfPhase>(p), static_cast<ProfModule>(m));
      if (s.entries == 0 && s.self_ticks == 0) continue;
      w.begin_row(prof_id);
      w.str(to_string(static_cast<ProfPhase>(p)));
      w.str(to_string(static_cast<ProfModule>(m)));
      w.u64(s.self_ticks);
      w.u64(s.entries);
      w.end_row();
    }
  }
  if (!flushes_.empty()) {
    const std::uint32_t flush_id = w.define_stream(
        "prof.flush",
        {{"cycle", BinField::U64}, {"self_ticks", BinField::KvU64}});
    for (const FlushRecord& rec : flushes_) {
      std::map<std::string, std::uint64_t> kv;
      for (int m = 0; m < kNumProfModules; ++m) {
        if (m == static_cast<int>(ProfModule::Engine)) continue;
        if (rec.self_ticks[static_cast<std::size_t>(m)] == 0) continue;
        kv[to_string(static_cast<ProfModule>(m))] =
            rec.self_ticks[static_cast<std::size_t>(m)];
      }
      w.begin_row(flush_id);
      w.u64(rec.cycle);
      w.kv_u64(kv);
      w.end_row();
    }
  }
}

}  // namespace gpuqos
