// Log2-bucketed latency histogram with percentile extraction.
//
// Bucket b >= 1 holds values v with bit_width(v) == b, i.e. [2^(b-1), 2^b);
// bucket 0 holds v == 0. Values at or above 2^(kBuckets-2) collapse into the
// final overflow bucket. Recording is O(1) with no allocation, so histograms
// are safe to bump from simulator hot paths.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace gpuqos {

class LatencyHistogram {
 public:
  /// Buckets 0..kBuckets-1; the last one is the overflow bucket, covering
  /// [2^(kBuckets-2), +inf). 40 buckets track latencies up to ~5e11 cycles
  /// exactly, far beyond any simulated request lifetime.
  static constexpr unsigned kBuckets = 40;

  void record(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::uint64_t bucket_count(unsigned b) const {
    return buckets_[b];
  }
  [[nodiscard]] std::uint64_t overflow_count() const {
    return buckets_[kBuckets - 1];
  }

  /// Inclusive lower bound of bucket `b`.
  [[nodiscard]] static std::uint64_t bucket_lo(unsigned b);
  /// Exclusive upper bound of bucket `b` (for the overflow bucket, the
  /// observed max is used during interpolation instead).
  [[nodiscard]] static std::uint64_t bucket_hi(unsigned b);

  /// Percentile in [0, 100], linearly interpolated inside the bucket and
  /// clamped to the observed [min, max]. Returns 0 for an empty histogram;
  /// a single-sample histogram returns that sample for every percentile.
  [[nodiscard]] double percentile(double p) const;

  void clear();

  /// {"count":..,"mean":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}
  [[nodiscard]] std::string to_json() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace gpuqos
