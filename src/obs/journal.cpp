#include "obs/journal.hpp"

#include <cmath>
#include <ostream>

#include "common/jsonio.hpp"
#include "obs/binlog.hpp"

namespace gpuqos {

void QosJournal::record_prediction(Cycle gpu_now, std::uint64_t frame,
                                   double predicted, double actual) {
  Entry e;
  e.kind = Kind::Prediction;
  e.gpu_cycle = gpu_now;
  e.frame = frame;
  e.predicted = predicted;
  e.actual = actual;
  entries_.push_back(std::move(e));
  ++predictions_;
}

void QosJournal::record_wg_change(Cycle gpu_now, Cycle prev_wg, Cycle wg,
                                  unsigned ng, double cp, double ct,
                                  std::uint64_t accesses) {
  Entry e;
  e.kind = Kind::WgChange;
  e.gpu_cycle = gpu_now;
  e.prev_wg = prev_wg;
  e.wg = wg;
  e.ng = ng;
  e.cp = cp;
  e.ct = ct;
  e.accesses = accesses;
  entries_.push_back(std::move(e));
  ++wg_changes_;
}

void QosJournal::record_prio_flip(Cycle gpu_now, bool on, double cp,
                                  double ct) {
  Entry e;
  e.kind = Kind::PrioFlip;
  e.gpu_cycle = gpu_now;
  e.prio_on = on;
  e.cp = cp;
  e.ct = ct;
  entries_.push_back(std::move(e));
  ++prio_flips_;
}

void QosJournal::record_relearn(Cycle gpu_now, std::uint64_t total_relearns) {
  Entry e;
  e.kind = Kind::Relearn;
  e.gpu_cycle = gpu_now;
  e.accesses = total_relearns;
  entries_.push_back(std::move(e));
}

void QosJournal::mark(Cycle gpu_now, const std::string& label) {
  Entry e;
  e.kind = Kind::Mark;
  e.gpu_cycle = gpu_now;
  e.label = label;
  entries_.push_back(std::move(e));
}

double QosJournal::mean_prediction_error_pct() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::Prediction || e.actual <= 0.0) continue;
    sum += (e.predicted - e.actual) / e.actual * 100.0;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double QosJournal::mean_abs_prediction_error_pct() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::Prediction || e.actual <= 0.0) continue;
    sum += std::abs(e.predicted - e.actual) / e.actual * 100.0;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

void QosJournal::write_jsonl(std::ostream& os) const {
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::Prediction:
        os << "{\"type\":\"prediction\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"frame\":" << e.frame
           << ",\"predicted\":" << json_double(e.predicted)
           << ",\"actual\":" << json_double(e.actual) << ",\"err_pct\":"
           << json_double(e.actual > 0
                              ? (e.predicted - e.actual) / e.actual * 100.0
                              : 0.0)
           << "}\n";
        break;
      case Kind::WgChange:
        os << "{\"type\":\"wg\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"prev_wg\":" << e.prev_wg << ",\"wg\":" << e.wg
           << ",\"ng\":" << e.ng << ",\"cp\":" << json_double(e.cp)
           << ",\"ct\":" << json_double(e.ct) << ",\"a\":" << e.accesses
           << "}\n";
        break;
      case Kind::PrioFlip:
        os << "{\"type\":\"cpu_prio\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"on\":" << (e.prio_on ? "true" : "false")
           << ",\"cp\":" << json_double(e.cp)
           << ",\"ct\":" << json_double(e.ct) << "}\n";
        break;
      case Kind::Relearn:
        os << "{\"type\":\"relearn\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"total\":" << e.accesses << "}\n";
        break;
      case Kind::Mark:
        os << "{\"type\":\"mark\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"label\":\"" << json_escape(e.label) << "\"}\n";
        break;
    }
  }
}

void QosJournal::write_binlog(BinLogWriter& w) const {
  // One stream per entry kind (rows of a stream share one schema); the
  // literal "type" field makes a generically decoded row match the
  // write_jsonl line. Streams are defined lazily so an empty kind adds no
  // schema record, and rows land in file order = chronological order.
  std::uint32_t prediction_id = 0, wg_id = 0, prio_id = 0, relearn_id = 0,
                mark_id = 0;
  bool have_prediction = false, have_wg = false, have_prio = false,
       have_relearn = false, have_mark = false;
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::Prediction:
        if (!have_prediction) {
          prediction_id = w.define_stream(
              "journal.prediction", {{"type", BinField::Str},
                                     {"gpu_cycle", BinField::U64},
                                     {"frame", BinField::U64},
                                     {"predicted", BinField::F64},
                                     {"actual", BinField::F64},
                                     {"err_pct", BinField::F64}});
          have_prediction = true;
        }
        w.begin_row(prediction_id);
        w.str("prediction");
        w.u64(e.gpu_cycle);
        w.u64(e.frame);
        w.f64(e.predicted);
        w.f64(e.actual);
        w.f64(e.actual > 0 ? (e.predicted - e.actual) / e.actual * 100.0
                           : 0.0);
        w.end_row();
        break;
      case Kind::WgChange:
        if (!have_wg) {
          wg_id = w.define_stream("journal.wg",
                                  {{"type", BinField::Str},
                                   {"gpu_cycle", BinField::U64},
                                   {"prev_wg", BinField::U64},
                                   {"wg", BinField::U64},
                                   {"ng", BinField::U64},
                                   {"cp", BinField::F64},
                                   {"ct", BinField::F64},
                                   {"a", BinField::U64}});
          have_wg = true;
        }
        w.begin_row(wg_id);
        w.str("wg");
        w.u64(e.gpu_cycle);
        w.u64(e.prev_wg);
        w.u64(e.wg);
        w.u64(e.ng);
        w.f64(e.cp);
        w.f64(e.ct);
        w.u64(e.accesses);
        w.end_row();
        break;
      case Kind::PrioFlip:
        if (!have_prio) {
          prio_id = w.define_stream("journal.cpu_prio",
                                    {{"type", BinField::Str},
                                     {"gpu_cycle", BinField::U64},
                                     {"on", BinField::Bool},
                                     {"cp", BinField::F64},
                                     {"ct", BinField::F64}});
          have_prio = true;
        }
        w.begin_row(prio_id);
        w.str("cpu_prio");
        w.u64(e.gpu_cycle);
        w.boolean(e.prio_on);
        w.f64(e.cp);
        w.f64(e.ct);
        w.end_row();
        break;
      case Kind::Relearn:
        if (!have_relearn) {
          relearn_id = w.define_stream("journal.relearn",
                                       {{"type", BinField::Str},
                                        {"gpu_cycle", BinField::U64},
                                        {"total", BinField::U64}});
          have_relearn = true;
        }
        w.begin_row(relearn_id);
        w.str("relearn");
        w.u64(e.gpu_cycle);
        w.u64(e.accesses);
        w.end_row();
        break;
      case Kind::Mark:
        if (!have_mark) {
          mark_id = w.define_stream("journal.mark",
                                    {{"type", BinField::Str},
                                     {"gpu_cycle", BinField::U64},
                                     {"label", BinField::Str}});
          have_mark = true;
        }
        w.begin_row(mark_id);
        w.str("mark");
        w.u64(e.gpu_cycle);
        w.str(e.label);
        w.end_row();
        break;
    }
  }
}

}  // namespace gpuqos
