#include "obs/journal.hpp"

#include <cmath>
#include <ostream>

#include "common/jsonio.hpp"

namespace gpuqos {

void QosJournal::record_prediction(Cycle gpu_now, std::uint64_t frame,
                                   double predicted, double actual) {
  Entry e;
  e.kind = Kind::Prediction;
  e.gpu_cycle = gpu_now;
  e.frame = frame;
  e.predicted = predicted;
  e.actual = actual;
  entries_.push_back(std::move(e));
  ++predictions_;
}

void QosJournal::record_wg_change(Cycle gpu_now, Cycle prev_wg, Cycle wg,
                                  unsigned ng, double cp, double ct,
                                  std::uint64_t accesses) {
  Entry e;
  e.kind = Kind::WgChange;
  e.gpu_cycle = gpu_now;
  e.prev_wg = prev_wg;
  e.wg = wg;
  e.ng = ng;
  e.cp = cp;
  e.ct = ct;
  e.accesses = accesses;
  entries_.push_back(std::move(e));
  ++wg_changes_;
}

void QosJournal::record_prio_flip(Cycle gpu_now, bool on, double cp,
                                  double ct) {
  Entry e;
  e.kind = Kind::PrioFlip;
  e.gpu_cycle = gpu_now;
  e.prio_on = on;
  e.cp = cp;
  e.ct = ct;
  entries_.push_back(std::move(e));
  ++prio_flips_;
}

void QosJournal::record_relearn(Cycle gpu_now, std::uint64_t total_relearns) {
  Entry e;
  e.kind = Kind::Relearn;
  e.gpu_cycle = gpu_now;
  e.accesses = total_relearns;
  entries_.push_back(std::move(e));
}

void QosJournal::mark(Cycle gpu_now, const std::string& label) {
  Entry e;
  e.kind = Kind::Mark;
  e.gpu_cycle = gpu_now;
  e.label = label;
  entries_.push_back(std::move(e));
}

double QosJournal::mean_prediction_error_pct() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::Prediction || e.actual <= 0.0) continue;
    sum += (e.predicted - e.actual) / e.actual * 100.0;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double QosJournal::mean_abs_prediction_error_pct() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::Prediction || e.actual <= 0.0) continue;
    sum += std::abs(e.predicted - e.actual) / e.actual * 100.0;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

void QosJournal::write_jsonl(std::ostream& os) const {
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::Prediction:
        os << "{\"type\":\"prediction\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"frame\":" << e.frame
           << ",\"predicted\":" << json_double(e.predicted)
           << ",\"actual\":" << json_double(e.actual) << ",\"err_pct\":"
           << json_double(e.actual > 0
                              ? (e.predicted - e.actual) / e.actual * 100.0
                              : 0.0)
           << "}\n";
        break;
      case Kind::WgChange:
        os << "{\"type\":\"wg\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"prev_wg\":" << e.prev_wg << ",\"wg\":" << e.wg
           << ",\"ng\":" << e.ng << ",\"cp\":" << json_double(e.cp)
           << ",\"ct\":" << json_double(e.ct) << ",\"a\":" << e.accesses
           << "}\n";
        break;
      case Kind::PrioFlip:
        os << "{\"type\":\"cpu_prio\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"on\":" << (e.prio_on ? "true" : "false")
           << ",\"cp\":" << json_double(e.cp)
           << ",\"ct\":" << json_double(e.ct) << "}\n";
        break;
      case Kind::Relearn:
        os << "{\"type\":\"relearn\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"total\":" << e.accesses << "}\n";
        break;
      case Kind::Mark:
        os << "{\"type\":\"mark\",\"gpu_cycle\":" << e.gpu_cycle
           << ",\"label\":\"" << json_escape(e.label) << "\"}\n";
        break;
    }
  }
}

}  // namespace gpuqos
