// ActivityCounterBank: the stable catalog of hardware-style activity events.
//
// The future power-proxy model (ROADMAP item 2, after Dev et al. / Gupta et
// al.) consumes per-module event rates: DRAM ACT/PRE/RD/WR per channel, LLC
// lookups/fills/writebacks, MSHR allocations, ring hops, GPU fragments and
// tiles retired, ATU token grants/denials, committed instructions per core.
// The counters themselves live in the run's StatRegistry — modules register
// and bump them *unconditionally* (they are architectural activity, so the
// determinism digest must not depend on whether observability is enabled).
// This class is the schema layer on top: it knows which registry keys form
// the activity set for a given machine shape and renders them in a stable
// JSON schema (missing keys read as 0, so a run that never exercised a
// module still exports its full column set).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpuqos {

class BinLogWriter;
struct SimConfig;

struct ActivityCounter {
  std::string stat;    // StatRegistry key, e.g. "dram.ch0.act"
  std::string module;  // catalog group, e.g. "dram"
  std::string event;   // event name within the group, e.g. "ch0.act"
};

class ActivityCounterBank {
 public:
  /// Catalog for a machine with `cpu_cores` cores and `dram_channels`
  /// channels (per-instance counters expand per the shape).
  ActivityCounterBank(unsigned cpu_cores, unsigned dram_channels);

  /// Catalog for a configured machine.
  [[nodiscard]] static ActivityCounterBank for_config(const SimConfig& cfg);

  [[nodiscard]] const std::vector<ActivityCounter>& catalog() const {
    return catalog_;
  }

  /// Schema only (no values): {"schema_version":1,"modules":{"dram":
  /// [{"event":"ch0.act","stat":"dram.ch0.act"},...],...}}.
  [[nodiscard]] std::string schema_json() const;

  /// Schema + values resolved from a counter snapshot (StatRegistry::
  /// counters() or a Telemetry counter snapshot); absent keys render as 0:
  /// {"schema_version":1,"counters":{"cpu0.committed_instrs":N,...}}.
  [[nodiscard]] std::string values_json(
      const std::map<std::string, std::uint64_t>& counters) const;

  /// One "counters" binlog row per catalog entry (stat, module, event,
  /// value), absent keys as 0.
  void write_binlog(BinLogWriter& w,
                    const std::map<std::string, std::uint64_t>& counters)
      const;

 private:
  void add(const std::string& module, const std::string& event);

  std::vector<ActivityCounter> catalog_;
};

}  // namespace gpuqos
