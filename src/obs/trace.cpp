#include "obs/trace.hpp"

#include <ostream>

#include "common/jsonio.hpp"
#include "common/units.hpp"
#include "obs/binlog.hpp"

namespace gpuqos {
namespace {

constexpr int kPid = 1;

double cycles_to_us(Cycle c) { return cycles_to_seconds(c) * 1e6; }

}  // namespace

void TraceWriter::complete(const std::string& name, int tid, Cycle start,
                           Cycle end, const std::string& args_json) {
  Event e;
  e.name = name;
  e.ph = 'X';
  e.ts = start;
  e.dur = end >= start ? end - start : 0;
  e.tid = tid;
  e.args = args_json;
  events_.push_back(std::move(e));
}

void TraceWriter::instant(const std::string& name, int tid, Cycle at,
                          const std::string& args_json) {
  Event e;
  e.name = name;
  e.ph = 'i';
  e.ts = at;
  e.tid = tid;
  e.args = args_json;
  events_.push_back(std::move(e));
}

void TraceWriter::counter(const std::string& name, Cycle at, double value) {
  Event e;
  e.name = name;
  e.ph = 'C';
  e.ts = at;
  e.tid = kTidControl;
  e.value = value;
  events_.push_back(std::move(e));
}

void TraceWriter::name_process(const std::string& name) {
  Event e;
  e.name = name;
  e.ph = 'M';
  events_.push_back(std::move(e));
}

void TraceWriter::name_thread(int tid, const std::string& name) {
  Event e;
  e.name = name;
  e.ph = 'M';
  e.tid = tid;
  events_.push_back(std::move(e));
}

void TraceWriter::render_prelude(std::ostream& os) {
  os << "{\"traceEvents\":[";
}

void TraceWriter::render_event(std::ostream& os, const Event& e, bool first) {
  if (!first) os << ",";
  os << "\n";
  if (e.ph == 'M') {
    // Metadata: process_name (tid 0) or thread_name.
    if (e.tid == 0) {
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPid
         << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(e.name)
         << "\"}}";
    } else {
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid
         << ",\"tid\":" << e.tid << ",\"args\":{\"name\":\""
         << json_escape(e.name) << "\"}}";
    }
    return;
  }
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"" << e.ph
     << "\",\"ts\":" << json_double(cycles_to_us(e.ts)) << ",\"pid\":" << kPid
     << ",\"tid\":" << e.tid;
  if (e.ph == 'X') {
    os << ",\"dur\":" << json_double(cycles_to_us(e.ts + e.dur) -
                                     cycles_to_us(e.ts));
  }
  if (e.ph == 'C') {
    os << ",\"args\":{\"value\":" << json_double(e.value) << "}";
  } else if (!e.args.empty()) {
    os << ",\"args\":{" << e.args << "}";
  } else if (e.ph == 'i') {
    os << ",\"s\":\"g\"";
  }
  os << "}";
}

void TraceWriter::render_epilogue(std::ostream& os) {
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceWriter::write(std::ostream& os) const {
  render_prelude(os);
  bool first = true;
  for (const Event& e : events_) {
    render_event(os, e, first);
    first = false;
  }
  render_epilogue(os);
}

void TraceWriter::write_binlog(BinLogWriter& w) const {
  const std::uint32_t id = w.define_stream(
      "trace", {{"name", BinField::Str},
                {"ph", BinField::Str},
                {"ts", BinField::U64},
                {"dur", BinField::U64},
                {"tid", BinField::U64},
                {"args", BinField::Str},
                {"value", BinField::F64}});
  for (const Event& e : events_) {
    w.begin_row(id);
    w.str(e.name);
    w.str(std::string(1, e.ph));
    w.u64(e.ts);
    w.u64(e.dur);
    w.u64(static_cast<std::uint64_t>(e.tid));
    w.str(e.args);
    w.f64(e.value);
    w.end_row();
  }
}

}  // namespace gpuqos
