#include "obs/trace.hpp"

#include <ostream>

#include "common/jsonio.hpp"
#include "common/units.hpp"

namespace gpuqos {
namespace {

constexpr int kPid = 1;

double cycles_to_us(Cycle c) { return cycles_to_seconds(c) * 1e6; }

}  // namespace

void TraceWriter::complete(const std::string& name, int tid, Cycle start,
                           Cycle end, const std::string& args_json) {
  Event e;
  e.name = name;
  e.ph = 'X';
  e.ts = start;
  e.dur = end >= start ? end - start : 0;
  e.tid = tid;
  e.args = args_json;
  events_.push_back(std::move(e));
}

void TraceWriter::instant(const std::string& name, int tid, Cycle at,
                          const std::string& args_json) {
  Event e;
  e.name = name;
  e.ph = 'i';
  e.ts = at;
  e.tid = tid;
  e.args = args_json;
  events_.push_back(std::move(e));
}

void TraceWriter::counter(const std::string& name, Cycle at, double value) {
  Event e;
  e.name = name;
  e.ph = 'C';
  e.ts = at;
  e.tid = kTidControl;
  e.value = value;
  events_.push_back(std::move(e));
}

void TraceWriter::name_process(const std::string& name) {
  Event e;
  e.name = name;
  e.ph = 'M';
  events_.push_back(std::move(e));
}

void TraceWriter::name_thread(int tid, const std::string& name) {
  Event e;
  e.name = name;
  e.ph = 'M';
  e.tid = tid;
  events_.push_back(std::move(e));
}

void TraceWriter::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    if (e.ph == 'M') {
      // Metadata: process_name (tid 0) or thread_name.
      if (e.tid == 0) {
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPid
           << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(e.name)
           << "\"}}";
      } else {
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid
           << ",\"tid\":" << e.tid << ",\"args\":{\"name\":\""
           << json_escape(e.name) << "\"}}";
      }
      continue;
    }
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"" << e.ph
       << "\",\"ts\":" << json_double(cycles_to_us(e.ts)) << ",\"pid\":" << kPid
       << ",\"tid\":" << e.tid;
    if (e.ph == 'X') {
      os << ",\"dur\":" << json_double(cycles_to_us(e.ts + e.dur) -
                                       cycles_to_us(e.ts));
    }
    if (e.ph == 'C') {
      os << ",\"args\":{\"value\":" << json_double(e.value) << "}";
    } else if (!e.args.empty()) {
      os << ",\"args\":{" << e.args << "}";
    } else if (e.ph == 'i') {
      os << ",\"s\":\"g\"";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace gpuqos
