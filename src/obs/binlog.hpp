// Compact binary telemetry stream ("binlog", magic GQBL).
//
// JSONL telemetry dominates I/O on long runs (ROADMAP item 5): every sample
// repeats its counter names and renders every number in decimal. The binlog
// is a self-describing record stream that fixes both costs: stream schemas
// and a string dictionary are emitted once, rows carry varint-packed values,
// and `tools/obs_cat` converts a file back to the exact JSONL/CSV/Chrome
// trace the native writers produce, so figure harnesses keep working.
//
// File format (all multi-byte integers are LEB128 varints unless noted):
//
//   file      := 'G' 'Q' 'B' 'L' version:u8 record*          (version = 1)
//   record    := 0x01 stream-def | 0x02 row | 0x03 dict-entry
//   stream-def:= stream_id str(name) nfields (str(fname) ftype:u8)*
//   dict-entry:= index str(name)          // indices are sequential from 0
//   row       := stream_id value*         // one value per schema field
//   str       := len bytes
//
// Field types (ftype) and their value encodings:
//
//   0 U64   varint            3 Str   str
//   1 I64   zigzag varint     4 Bool  u8 (0/1)
//   2 F64   8-byte LE IEEE    5 KvU64 n (dict_idx varint)*n
//                             6 KvF64 n (dict_idx 8-byte-LE)*n
//
// Kv fields hold sparse name->value maps (e.g. per-interval counter deltas);
// names go through the file-global dictionary, so a counter name is stored
// once no matter how many samples mention it. Dict entries and stream defs
// always precede their first use, so a reader builds its tables in one pass.
//
// F64 values are stored as raw IEEE bits and re-rendered through
// `json_double`, which makes a decoded JSONL byte-identical to the native
// writer's output.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace gpuqos {

enum class BinField : std::uint8_t {
  U64 = 0,
  I64 = 1,
  F64 = 2,
  Str = 3,
  Bool = 4,
  KvU64 = 5,
  KvF64 = 6,
};

[[nodiscard]] const char* to_string(BinField t);

struct BinFieldDef {
  std::string name;
  BinField type = BinField::U64;
};

struct BinStreamDef {
  std::uint32_t id = 0;
  std::string name;
  std::vector<BinFieldDef> fields;
};

/// Malformed input: bad magic, truncated record, unknown opcode/stream/dict
/// index. Carries the byte offset of the failure.
class BinLogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BinLogWriter {
 public:
  /// Define a stream and return its id. Stream names are unique; fields are
  /// serialized in definition order and every row must supply all of them.
  std::uint32_t define_stream(const std::string& name,
                              std::vector<BinFieldDef> fields);

  // Row building: begin_row, one typed call per schema field (in schema
  // order — checked), end_row. Misuse trips GPUQOS_CHECK.
  void begin_row(std::uint32_t stream_id);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(const std::string& v);
  void boolean(bool v);
  void kv_u64(const std::map<std::string, std::uint64_t>& kv);
  void kv_f64(const std::map<std::string, double>& kv);
  void end_row();

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const;
  [[nodiscard]] std::size_t rows() const { return rows_; }

  /// Write the stream to `path` with checked fwrite/fclose; a short write
  /// (disk full, permission) is surfaced through GPUQOS_LOG(Error) and
  /// returns false. The file is not atomic: a failed write leaves a partial
  /// file behind, which the header version guards against misreading.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  static void varint(std::vector<std::uint8_t>& out, std::uint64_t v);
  static void raw_f64(std::vector<std::uint8_t>& out, double v);
  static void raw_str(std::vector<std::uint8_t>& out, const std::string& s);
  std::uint32_t intern(const std::string& name);
  const BinFieldDef& expect_field(BinField t);

  std::vector<std::uint8_t> buf_{'G', 'Q', 'B', 'L', 1};
  std::vector<BinStreamDef> streams_;
  std::map<std::string, std::uint32_t> dict_;
  std::size_t rows_ = 0;
  // In-flight row state. Values accumulate in `row_buf_` and are appended to
  // `buf_` at end_row(), so dict entries interned mid-row (new Kv keys) land
  // *before* the row record in the file.
  const BinStreamDef* cur_ = nullptr;
  std::size_t cur_field_ = 0;
  std::vector<std::uint8_t> row_buf_;
};

/// One decoded value; `type` selects the active member.
struct BinValue {
  BinField type = BinField::U64;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  std::vector<std::pair<std::string, std::uint64_t>> kv_u;
  std::vector<std::pair<std::string, double>> kv_d;
};

struct BinRow {
  const BinStreamDef* def = nullptr;
  std::vector<BinValue> values;
};

class BinLogReader {
 public:
  /// Validates the header; throws BinLogError on bad magic/version.
  explicit BinLogReader(std::vector<std::uint8_t> bytes);

  /// Decode the next row (stream defs and dict entries are consumed
  /// internally). Returns false at a clean end of stream; throws
  /// BinLogError on a malformed or truncated record.
  [[nodiscard]] bool next(BinRow& row);

  /// Streams defined so far (grows as next() encounters definitions). A
  /// deque so `BinRow::def` pointers stay valid across later definitions.
  [[nodiscard]] const std::deque<BinStreamDef>& streams() const {
    return streams_;
  }

  /// Load a whole file; throws BinLogError when it cannot be read.
  [[nodiscard]] static std::vector<std::uint8_t> read_file(
      const std::string& path);

 private:
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] double raw_f64();
  [[nodiscard]] std::string raw_str();
  [[nodiscard]] std::uint8_t byte();
  [[noreturn]] void fail(const std::string& what) const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::deque<BinStreamDef> streams_;
  std::vector<std::string> dict_;
};

// --- Converters (the obs_cat back-ends) -----------------------------------
// `selector` matches a stream when it equals the stream name or is a
// dot-prefix of it ("journal" selects "journal.wg", "journal.mark", ...).
// Rows are rendered in file order, which preserves chronology across the
// per-kind journal streams.

[[nodiscard]] bool binlog_stream_matches(const std::string& selector,
                                         const std::string& stream_name);

/// Render selected rows as JSONL, byte-identical to the native writers
/// (IntervalSampler::write_jsonl, QosJournal::write_jsonl, ...).
void binlog_to_jsonl(BinLogReader& reader, const std::string& selector,
                     std::ostream& os);

/// Render selected rows as CSV: scalar fields become columns, Kv fields
/// expand to the union of their keys (absent keys render as 0) — the same
/// shape as IntervalSampler::write_csv.
void binlog_to_csv(BinLogReader& reader, const std::string& selector,
                   std::ostream& os);

/// Render the "trace" stream as a Chrome trace JSON document, byte-identical
/// to TraceWriter::write.
void binlog_to_chrome_trace(BinLogReader& reader, std::ostream& os);

/// Per-stream row counts: "samples: 42 rows, 4 fields" lines.
void binlog_list(BinLogReader& reader, std::ostream& os);

}  // namespace gpuqos
