#include "obs/sampler.hpp"

#include <ostream>
#include <set>

#include "common/jsonio.hpp"
#include "obs/binlog.hpp"

namespace gpuqos {

void IntervalSampler::add_gauge(const std::string& name, GaugeFn fn) {
  gauges_.emplace_back(name, std::move(fn));
}

void IntervalSampler::rebase(Cycle now) {
  if (stats_ == nullptr) return;  // sampler disabled (never bound)
  baseline_ = stats_->counters();
  last_cycle_ = now;
}

void IntervalSampler::sample(Cycle now) {
  if (stats_ == nullptr) return;  // sampler disabled (never bound)
  Sample s;
  s.cycle = now;
  s.dt = now >= last_cycle_ ? now - last_cycle_ : 0;
  auto current = stats_->counters();
  for (const auto& [name, value] : current) {
    auto it = baseline_.find(name);
    const std::uint64_t before = it == baseline_.end() ? 0 : it->second;
    if (value > before) s.deltas[name] = value - before;
  }
  for (const auto& [name, fn] : gauges_) s.gauges[name] = fn();
  baseline_ = std::move(current);
  last_cycle_ = now;
  samples_.push_back(std::move(s));
}

void IntervalSampler::write_jsonl(std::ostream& os) const {
  for (const Sample& s : samples_) {
    os << "{\"cycle\":" << s.cycle << ",\"dt\":" << s.dt << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : s.deltas) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":" << v;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : s.gauges) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":" << json_double(v);
    }
    os << "}}\n";
  }
}

void IntervalSampler::write_csv(std::ostream& os) const {
  std::set<std::string> counter_keys;
  std::set<std::string> gauge_keys;
  for (const Sample& s : samples_) {
    for (const auto& [name, _] : s.deltas) counter_keys.insert(name);
    for (const auto& [name, _] : s.gauges) gauge_keys.insert(name);
  }
  os << "cycle,dt";
  for (const auto& k : counter_keys) os << "," << k;
  for (const auto& k : gauge_keys) os << "," << k;
  os << "\n";
  for (const Sample& s : samples_) {
    os << s.cycle << "," << s.dt;
    for (const auto& k : counter_keys) {
      auto it = s.deltas.find(k);
      os << "," << (it == s.deltas.end() ? 0 : it->second);
    }
    for (const auto& k : gauge_keys) {
      auto it = s.gauges.find(k);
      os << "," << json_double(it == s.gauges.end() ? 0.0 : it->second);
    }
    os << "\n";
  }
}

void IntervalSampler::write_binlog(BinLogWriter& w) const {
  const std::uint32_t id = w.define_stream(
      "samples", {{"cycle", BinField::U64},
                  {"dt", BinField::U64},
                  {"counters", BinField::KvU64},
                  {"gauges", BinField::KvF64}});
  for (const Sample& s : samples_) {
    w.begin_row(id);
    w.u64(s.cycle);
    w.u64(s.dt);
    w.kv_u64(s.deltas);
    w.kv_f64(s.gauges);
    w.end_row();
  }
}

}  // namespace gpuqos
