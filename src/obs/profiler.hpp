// Cycle-attribution profiler: where does *host* wall-time go inside a run?
//
// Scoped RAII timers (ProfScope) stamp module entry/exit with a cheap
// rdtsc-style clock and accumulate *self* time — child scopes subtract their
// elapsed ticks from the enclosing frame, so nesting (a DRAM completion that
// wakes LLC waiters that re-enter the ring) attributes each tick to exactly
// one module. Everything outside any scope is the engine's own dispatch
// overhead and is reported as the explicit "engine" residual row, which makes
// the attribution table sum to the run total by construction.
//
// Attribution is split per phase (warm-up vs measured window) because the
// warm-up runs different code proportions (no sampling, colder caches).
//
// Cost model: a Profiler is attached the same way as Telemetry — modules
// hold a raw pointer that is null by default, and ProfScope on a null
// profiler compiles to two predictable branches. The profiler never touches
// simulated state, so digests are identical with and without it (host ticks
// stay on the host side).
//
// Pool safety: a Profiler has no global state; run_many() workers profile
// into per-job instances that the caller merges with merge() at join.
//
// Parallel-tick safety: inside one run, tick workers (engine.hpp) enter and
// leave scopes concurrently with the main thread. Each thread writes its own
// cache-line-aligned lane (scope stack + slot matrix), selected by
// set_thread_lane() from the engine's worker-init hook; readers (flush,
// table, to_json, slot()) aggregate across lanes and only run on the main
// thread between cycles, when workers are parked at the barrier.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace gpuqos {

class BinLogWriter;

/// Modules host time is attributed to. `Engine` is the residual (dispatch,
/// timing wheel, anything not inside a scope) and never used in a ProfScope.
enum class ProfModule : int {
  CpuCore = 0,   // CpuCore::tick commit loop + L1/L2 path
  GpuPipeline,   // GpuPipeline::tick_gpu fragment generation/retire
  GpuMem,        // GpuMemInterface queue + ATU gate
  Llc,           // shared LLC lookup, MSHR, fill, waiter wakeup
  Ring,          // ring message routing
  Dram,          // channel tick, FR-FCFS scan, CAS completions
  Governor,      // QoS control step (FRPU/ATU decisions)
  Ckpt,          // drain barriers + snapshot serialization
  Engine,        // residual: event dispatch, tickers, everything unscoped
};
inline constexpr int kNumProfModules = 9;

[[nodiscard]] const char* to_string(ProfModule m);

enum class ProfPhase : int { Warm = 0, Measure };
inline constexpr int kNumProfPhases = 2;

[[nodiscard]] const char* to_string(ProfPhase p);

class Profiler {
 public:
  /// Raw timestamp: rdtsc on x86-64, steady_clock nanoseconds elsewhere.
  /// Monotonic enough for attribution (out-of-order drift is orders of
  /// magnitude below scope lengths); calibrated against steady_clock over
  /// the whole run for the seconds column of the table.
  [[nodiscard]] static std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc(); /*det:ok: host-side instrumentation, never mixed into
                        simulated state or digests*/
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            /*det:ok: host-side instrumentation*/
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  struct Slot {
    std::uint64_t self_ticks = 0;
    std::uint64_t entries = 0;
  };

  /// One periodic flush record: cumulative per-module self ticks (both
  /// phases combined) at a simulated cycle, for coarse time-sliced
  /// attribution of long runs.
  struct FlushRecord {
    Cycle cycle = 0;
    std::array<std::uint64_t, kNumProfModules> self_ticks{};
  };

  /// Open the run window (idempotent; the first call wins).
  void start();
  /// Close the run window and calibrate ticks -> seconds (idempotent).
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  void set_phase(ProfPhase p) { phase_ = p; }
  [[nodiscard]] ProfPhase phase() const { return phase_; }

  // Scope entry/exit; prefer ProfScope. Depth is bounded (kMaxDepth).
  // `scale` extrapolates a sampled scope: a caller too hot to time every
  // entry (per-tick module loops, ring sends, LLC lookups) times one in N and
  // passes scale = N; self ticks and entries are multiplied while the
  // *real* elapsed time still feeds the enclosing frame's child subtraction.
  void enter(ProfModule m, std::uint32_t scale = 1);
  void leave();

  /// Select the calling thread's attribution lane (clamped to
  /// [0, kMaxLanes)). The main thread defaults to lane 0; the engine's
  /// tick workers take lanes 1..kMaxLanes-1 via the worker-init hook.
  static void set_thread_lane(int lane);

  /// Record a cumulative snapshot of per-module self ticks (periodic flush;
  /// wired as an engine ticker by HeteroCmp::attach_telemetry).
  void flush(Cycle now);

  /// Fold another profiler's attribution into this one (run_many() workers
  /// profile into per-job instances merged at join). Flush records are
  /// concatenated; run windows add up.
  void merge(const Profiler& other);

  /// Aggregated (across thread lanes) attribution for one phase x module.
  [[nodiscard]] Slot slot(ProfPhase p, ProfModule m) const;
  /// Ticks between start() and stop() (this instance + merged ones).
  [[nodiscard]] std::uint64_t total_ticks() const;
  /// Sum of per-module self ticks across both phases (excludes residual).
  [[nodiscard]] std::uint64_t attributed_ticks() const;
  [[nodiscard]] double wall_seconds() const;
  [[nodiscard]] const std::vector<FlushRecord>& flushes() const {
    return flushes_;
  }

  /// Human-readable end-of-run attribution table (docs/OBSERVABILITY.md):
  /// one row per module incl. the "engine" residual, per-phase and total
  /// percentages; rows sum to 100% of the run window.
  [[nodiscard]] std::string table() const;

  /// {"total_ticks":N,"wall_seconds":S,"modules":{"llc":{"warm":{...},...}}}
  [[nodiscard]] std::string to_json() const;

  /// Append "prof" (per phase x module) and "prof.flush" streams to a
  /// binlog (obs/binlog.hpp).
  void write_binlog(BinLogWriter& w) const;

 public:
  /// Main thread + up to three tick workers (the engine spawns at most two
  /// today; one spare lane keeps the clamp cheap).
  static constexpr int kMaxLanes = 4;

 private:
  static constexpr int kMaxDepth = 16;

  struct Frame {
    ProfModule m = ProfModule::Engine;
    std::uint64_t start = 0;
    std::uint64_t child = 0;  // ticks spent in nested scopes
    std::uint32_t scale = 1;
  };

  /// One thread's attribution state, cache-line aligned so concurrent
  /// enter/leave on different lanes never share a line.
  struct alignas(64) Lane {
    Slot slots[kNumProfPhases][kNumProfModules];
    Frame stack[kMaxDepth];
    int depth = 0;
  };

  [[nodiscard]] Lane& this_lane();

  Lane lanes_[kMaxLanes];
  ProfPhase phase_ = ProfPhase::Warm;

  bool running_ = false;
  bool stopped_ = false;
  std::uint64_t run_start_ticks_ = 0;
  std::uint64_t run_ticks_ = 0;  // closed windows (incl. merged)
  std::chrono::steady_clock::time_point wall_start_{};
  double wall_seconds_ = 0.0;

  std::array<std::uint64_t, kNumProfModules> flush_cum_{};
  std::vector<FlushRecord> flushes_;
};

/// RAII module scope; a null profiler makes it a no-op.
class ProfScope {
 public:
  ProfScope(Profiler* p, ProfModule m) : p_(p) {
    if (p_ != nullptr) p_->enter(m);
  }
  ~ProfScope() {
    if (p_ != nullptr) p_->leave();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* p_;
};

/// Sampled RAII scope for per-cycle hot paths: times one entry in `Stride`
/// (a power of two) and extrapolates. `decim` is a caller-owned host-side
/// counter (never simulated state, so determinism is unaffected).
template <std::uint32_t Stride>
class SampledProfScope {
  static_assert((Stride & (Stride - 1)) == 0, "stride must be a power of 2");

 public:
  SampledProfScope(Profiler* p, ProfModule m, std::uint32_t& decim)
      : p_(p != nullptr && (decim++ & (Stride - 1)) == 0 ? p : nullptr) {
    if (p_ != nullptr) p_->enter(m, Stride);
  }
  ~SampledProfScope() {
    if (p_ != nullptr) p_->leave();
  }
  SampledProfScope(const SampledProfScope&) = delete;
  SampledProfScope& operator=(const SampledProfScope&) = delete;

 private:
  Profiler* p_;
};

}  // namespace gpuqos
