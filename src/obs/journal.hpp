// QoS decision journal.
//
// A chronological record of every decision the closed control loop makes:
// FRPU mid-frame prediction vs. realized frame time (the Fig. 8 data), every
// ATU `WG` transition with its Figure-6 controller inputs (CP, CT, A), every
// CPU-priority flip, relearn events, and free-form phase marks. The journal
// answers "why did the controller pick this WG step?" after the fact, and its
// prediction entries reproduce the fig08 estimation-error report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gpuqos {

class BinLogWriter;

class QosJournal {
 public:
  enum class Kind { Prediction, WgChange, PrioFlip, Relearn, Mark };

  struct Entry {
    Kind kind = Kind::Mark;
    Cycle gpu_cycle = 0;     // GPU-clock timestamp of the decision
    // Prediction
    std::uint64_t frame = 0;
    double predicted = 0.0;  // mid-frame predicted cycles (Eq. 3)
    double actual = 0.0;     // realized frame cycles
    // Controller state (WgChange / PrioFlip)
    Cycle prev_wg = 0;
    Cycle wg = 0;
    unsigned ng = 0;
    double cp = 0.0;         // predicted cycles/frame at the decision
    double ct = 0.0;         // target cycles/frame
    std::uint64_t accesses = 0;  // learned LLC accesses/frame (A)
    bool prio_on = false;
    // Mark
    std::string label;
  };

  void record_prediction(Cycle gpu_now, std::uint64_t frame, double predicted,
                         double actual);
  void record_wg_change(Cycle gpu_now, Cycle prev_wg, Cycle wg, unsigned ng,
                        double cp, double ct, std::uint64_t accesses);
  void record_prio_flip(Cycle gpu_now, bool on, double cp, double ct);
  void record_relearn(Cycle gpu_now, std::uint64_t total_relearns);
  void mark(Cycle gpu_now, const std::string& label);

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::uint64_t predictions() const { return predictions_; }
  [[nodiscard]] std::uint64_t wg_changes() const { return wg_changes_; }
  [[nodiscard]] std::uint64_t prio_flips() const { return prio_flips_; }

  /// Mean signed percent error of predictions vs. realized frame cycles —
  /// the fig08 metric, computed from the journal instead of ad-hoc counters.
  [[nodiscard]] double mean_prediction_error_pct() const;
  /// Mean absolute percent error of the same samples.
  [[nodiscard]] double mean_abs_prediction_error_pct() const;

  /// One JSON object per line, e.g.
  /// {"type":"wg","gpu_cycle":N,"prev_wg":0,"wg":2,"cp":...,"ct":...,"a":N}
  void write_jsonl(std::ostream& os) const;

  /// Append the entries to per-kind "journal.*" binlog streams
  /// (obs/binlog.hpp), in chronological order; each row carries the same
  /// fields as its write_jsonl line, so `obs_cat --stream journal` decodes
  /// to byte-identical JSONL.
  void write_binlog(BinLogWriter& w) const;

 private:
  std::vector<Entry> entries_;
  std::uint64_t predictions_ = 0;
  std::uint64_t wg_changes_ = 0;
  std::uint64_t prio_flips_ = 0;
};

}  // namespace gpuqos
